//! The simulated database instance: the stateful object a tuner interacts with.
//!
//! A [`SimDatabase`] owns the knob catalogue, the hardware description, the currently
//! applied configuration and the evolving data size. Each call to
//! [`SimDatabase::run_interval`] evaluates the analytical performance model for the
//! supplied workload, applies measurement noise, grows the data according to the write
//! volume (the TPC-C data-growth effect of Figure 1b), and returns an [`Evaluation`].
//!
//! The instance also tracks cumulative statistics that the experiment harness reports:
//! number of intervals, number of failures, cumulative transactions and cumulative
//! execution time.

use crate::config::Configuration;
use crate::fault::{FaultKind, FaultPlan};
use crate::hardware::HardwareSpec;
use crate::knobs::KnobCatalogue;
use crate::metrics::{InternalMetrics, PerformanceOutcome};
use crate::noise::NoiseModel;
use crate::optimizer::OptimizerStats;
use crate::perfmodel::{self, FAILURE_LATENCY_MS};
use crate::workload::WorkloadSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything observed from one tuning interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Noisy throughput / latency outcome of the interval.
    pub outcome: PerformanceOutcome,
    /// Internal metrics snapshot (the DDPG / QTune / MysqlTuner inputs).
    pub metrics: InternalMetrics,
    /// Optimizer statistics for the interval's queries (the data-featurization input).
    pub optimizer_stats: OptimizerStats,
    /// Data size at the end of the interval, in GiB.
    pub data_size_gib: f64,
    /// Length of the interval in seconds.
    pub interval_s: f64,
    /// The injected fault that hit this measurement, if any. Destructive faults
    /// ([`FaultKind::destroys_interval`]) zero the outcome; corrupting faults garble
    /// only the reported outcome while the instance keeps running normally.
    pub fault: Option<FaultKind>,
}

impl Evaluation {
    /// Number of transactions processed during the interval (used for cumulative-performance
    /// accounting of OLTP workloads).
    pub fn transactions(&self) -> f64 {
        self.outcome.throughput_tps * self.interval_s
    }
}

/// Complete serializable state of a [`SimDatabase`] (see [`SimDatabase::snapshot`]).
///
/// The knob catalogue is stored by name and rebuilt from the full MySQL 5.7 catalogue on
/// restore.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SimDatabaseState {
    /// Names of the catalogue knobs, in order.
    pub knob_names: Vec<String>,
    /// Hardware of the instance.
    pub hardware: HardwareSpec,
    /// Currently applied configuration.
    pub current_config: Configuration,
    /// Tracked logical data size.
    pub data_size_gib: Option<f64>,
    /// Measurement-noise model.
    pub noise: NoiseModel,
    /// Noise RNG state.
    pub rng: StdRng,
    /// Intervals run so far.
    pub intervals_run: usize,
    /// Failures (hangs) so far.
    pub failures: usize,
    /// Whether noise is disabled.
    pub deterministic: bool,
    /// Pending injected-fault schedule (empty in snapshots taken before fault
    /// injection existed — hence the serde default).
    #[serde(default)]
    pub fault_plan: FaultPlan,
}

/// A simulated MySQL-like cloud database instance.
pub struct SimDatabase {
    catalogue: KnobCatalogue,
    hardware: HardwareSpec,
    current_config: Configuration,
    data_size_gib: Option<f64>,
    noise: NoiseModel,
    rng: StdRng,
    intervals_run: usize,
    failures: usize,
    /// When true, the performance model is evaluated without noise (useful for tests and
    /// for computing ground-truth optima in the case study).
    deterministic: bool,
    fault_plan: FaultPlan,
}

impl SimDatabase {
    /// Creates an instance with the full MySQL 5.7 catalogue, the paper's 8 vCPU / 16 GiB
    /// hardware and the vendor-default configuration applied.
    pub fn new(seed: u64) -> Self {
        Self::with_catalogue(KnobCatalogue::mysql57(), HardwareSpec::default(), seed)
    }

    /// Creates an instance with a custom catalogue / hardware.
    pub fn with_catalogue(catalogue: KnobCatalogue, hardware: HardwareSpec, seed: u64) -> Self {
        let current_config = Configuration::vendor_default(&catalogue);
        SimDatabase {
            catalogue,
            hardware,
            current_config,
            data_size_gib: None,
            noise: NoiseModel::default(),
            rng: StdRng::seed_from_u64(seed),
            intervals_run: 0,
            failures: 0,
            deterministic: false,
            fault_plan: FaultPlan::new(),
        }
    }

    /// Disables measurement noise (used to compute ground truths and in unit tests).
    pub fn set_deterministic(&mut self, deterministic: bool) {
        self.deterministic = deterministic;
    }

    /// The knob catalogue of this instance.
    pub fn catalogue(&self) -> &KnobCatalogue {
        &self.catalogue
    }

    /// The hardware of this instance.
    pub fn hardware(&self) -> &HardwareSpec {
        &self.hardware
    }

    /// The currently applied configuration.
    pub fn current_config(&self) -> &Configuration {
        &self.current_config
    }

    /// Number of intervals run so far.
    pub fn intervals_run(&self) -> usize {
        self.intervals_run
    }

    /// Number of system failures (hangs) observed so far.
    pub fn failures(&self) -> usize {
        self.failures
    }

    /// Total injected faults that have hit this instance's measurements.
    pub fn faults_injected(&self) -> usize {
        self.fault_plan.injected
    }

    /// The instance's pending fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Schedules `count` injected faults of `kind` starting with the *next* measurement.
    pub fn inject_faults(&mut self, kind: FaultKind, count: usize) {
        self.fault_plan.schedule(kind, self.intervals_run, count);
    }

    /// Opens a seeded probabilistic fault window over the next `intervals` measurements:
    /// each faults with probability `rate`, decided by a dedicated RNG seeded with
    /// `seed` (the noise RNG is never consulted, so non-faulted intervals keep their
    /// exact noise draws).
    pub fn inject_seeded_faults(
        &mut self,
        kind: FaultKind,
        rate: f64,
        intervals: usize,
        seed: u64,
    ) {
        self.fault_plan.schedule_seeded(kind, rate, intervals, seed);
    }

    /// Current data size if the instance has started tracking it (after the first interval
    /// or an explicit [`SimDatabase::set_data_size`]).
    pub fn data_size_gib(&self) -> Option<f64> {
        self.data_size_gib
    }

    /// Sets the logical data size explicitly (e.g. when loading a benchmark dataset).
    pub fn set_data_size(&mut self, gib: f64) {
        self.data_size_gib = Some(gib.max(0.1));
    }

    /// Scales the tracked data size by `factor` (scenario-scripted data-volume growth,
    /// e.g. a bulk load or an archival purge). No-op until the instance tracks a size —
    /// i.e. before the first interval or [`SimDatabase::set_data_size`] call.
    pub fn scale_data(&mut self, factor: f64) {
        if let Some(size) = self.data_size_gib {
            self.set_data_size(size * factor.max(0.0));
        }
    }

    /// Resizes the instance's hardware in place (a cloud vertical scaling event). The
    /// analytic performance model consults the hardware on every evaluation, so the next
    /// [`SimDatabase::run_interval`] / [`SimDatabase::peek`] responds immediately: buffer
    /// pools compete for the new RAM budget, CPU and IO capacity change, and the currently
    /// applied configuration keeps its values (which may now overcommit or underuse the
    /// instance — exactly the situation a tuner must adapt to).
    pub fn set_hardware(&mut self, hardware: HardwareSpec) {
        self.hardware = hardware;
    }

    /// Applies a configuration to the running instance (no restart — only dynamic knobs are
    /// in the catalogue, as in the paper). Values are sanitized into their legal domains.
    pub fn apply_config(&mut self, config: &Configuration) {
        self.current_config = Configuration::from_values(&self.catalogue, config.values().to_vec());
    }

    /// Convenience: applies the vendor-default configuration.
    pub fn apply_vendor_default(&mut self) {
        self.current_config = Configuration::vendor_default(&self.catalogue);
    }

    /// Convenience: applies the DBA-default configuration.
    pub fn apply_dba_default(&mut self) {
        self.current_config = Configuration::dba_default(&self.catalogue);
    }

    /// Runs one tuning interval of `interval_s` seconds of the given workload under the
    /// currently applied configuration.
    pub fn run_interval(&mut self, workload: &WorkloadSpec, interval_s: f64) -> Evaluation {
        // The instance's own data-size state overrides the workload's nominal size once the
        // instance has been running (data grows under write-heavy workloads).
        let mut effective = workload.clone();
        let tracked = self.data_size_gib.unwrap_or(workload.data_size_gib);
        effective.data_size_gib = tracked;

        let model = perfmodel::evaluate(
            &self.catalogue,
            &self.current_config,
            &effective,
            &self.hardware,
        );

        // Injected-fault decision happens before the noise draw; destructive faults
        // skip the noise draw entirely (the interval never ran), corrupting faults
        // leave the true interval — and its noise draw — intact and garble only the
        // reported outcome below. Either way the RNG streams are deterministic and
        // fully captured by the snapshot.
        let fault = self.fault_plan.next_fault(self.intervals_run);
        let destroyed = fault.is_some_and(FaultKind::destroys_interval);

        let true_outcome = if model.outcome.failed {
            self.failures += 1;
            PerformanceOutcome::failure(FAILURE_LATENCY_MS)
        } else if destroyed {
            PerformanceOutcome::failure(FAILURE_LATENCY_MS)
        } else if self.deterministic {
            model.outcome
        } else {
            let factor = self.noise.sample_factor(interval_s, &mut self.rng);
            PerformanceOutcome {
                throughput_tps: model.outcome.throughput_tps * factor,
                latency_avg_ms: model.outcome.latency_avg_ms / factor,
                latency_p99_ms: (model.outcome.latency_p99_ms / factor).min(FAILURE_LATENCY_MS),
                failed: false,
            }
        };

        // Data growth: committed write transactions add rows. Calibrated so that a
        // write-heavy TPC-C-style workload grows from ~18 GiB to ~48 GiB over ~400 three-
        // minute intervals (Figure 1b / §7.1.1).
        let write_tps = true_outcome.throughput_tps * effective.mix.write_fraction();
        // ~30 bytes of net new data per committed write (inserts add rows, updates mostly
        // rewrite in place); calibrated so a write-heavy run grows by tens of GiB over 400
        // three-minute intervals, matching Figure 1b.
        let growth_gib = write_tps * interval_s * 30.0 / (1024.0 * 1024.0 * 1024.0);
        let new_size = tracked + growth_gib;
        self.data_size_gib = Some(new_size);

        // Corrupting faults garble only the report; data growth above already used the
        // true outcome, so the instance's internal trajectory is unaffected.
        let outcome = match fault {
            Some(FaultKind::CorruptNan) => PerformanceOutcome {
                throughput_tps: f64::NAN,
                latency_avg_ms: f64::NAN,
                latency_p99_ms: f64::NAN,
                failed: false,
            },
            Some(FaultKind::CorruptScale) => PerformanceOutcome {
                throughput_tps: true_outcome.throughput_tps * 1000.0,
                latency_avg_ms: true_outcome.latency_avg_ms / 1000.0,
                latency_p99_ms: true_outcome.latency_p99_ms / 1000.0,
                failed: false,
            },
            _ => true_outcome,
        };

        let optimizer_stats = OptimizerStats::estimate(&effective);
        self.intervals_run += 1;

        Evaluation {
            outcome,
            metrics: if model.outcome.failed || destroyed {
                InternalMetrics::zeroed()
            } else {
                model.metrics
            },
            optimizer_stats,
            data_size_gib: new_size,
            interval_s,
            fault,
        }
    }

    /// Exports the complete instance state for snapshots (see [`SimDatabaseState`]).
    pub fn snapshot(&self) -> SimDatabaseState {
        SimDatabaseState {
            knob_names: self
                .catalogue
                .knobs()
                .iter()
                .map(|k| k.name.to_string())
                .collect(),
            hardware: self.hardware,
            current_config: self.current_config.clone(),
            data_size_gib: self.data_size_gib,
            noise: self.noise,
            rng: self.rng.clone(),
            intervals_run: self.intervals_run,
            failures: self.failures,
            deterministic: self.deterministic,
            fault_plan: self.fault_plan.clone(),
        }
    }

    /// Rebuilds an instance from a snapshot; the restored instance produces the same
    /// evaluation stream (same noise draws, same data growth) as the exported one.
    ///
    /// Fails when the snapshot references a knob missing from the full MySQL 5.7 catalogue.
    pub fn restore(state: SimDatabaseState) -> Result<Self, String> {
        let full = KnobCatalogue::mysql57();
        let full_names: Vec<&str> = full.knobs().iter().map(|k| k.name).collect();
        let wanted: Vec<&str> = state.knob_names.iter().map(|s| s.as_str()).collect();
        for name in &wanted {
            if !full_names.contains(name) {
                return Err(format!("snapshot references unknown knob `{name}`"));
            }
        }
        let catalogue = if wanted == full_names {
            full
        } else {
            full.subset(&wanted)
        };
        Ok(SimDatabase {
            catalogue,
            hardware: state.hardware,
            current_config: state.current_config,
            data_size_gib: state.data_size_gib,
            noise: state.noise,
            rng: state.rng,
            intervals_run: state.intervals_run,
            failures: state.failures,
            deterministic: state.deterministic,
            fault_plan: state.fault_plan,
        })
    }

    /// Evaluates a configuration *without* applying it or mutating any state (no noise, no
    /// data growth, no failure accounting). Used to compute ground-truth surfaces (Figure
    /// 10) and the "Best" reference line (Figure 11).
    pub fn peek(&self, config: &Configuration, workload: &WorkloadSpec) -> PerformanceOutcome {
        let mut effective = workload.clone();
        if let Some(size) = self.data_size_gib {
            effective.data_size_gib = size;
        }
        perfmodel::evaluate(&self.catalogue, config, &effective, &self.hardware).outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadMix;

    fn tpcc_like() -> WorkloadSpec {
        WorkloadSpec {
            name: "tpcc-like".into(),
            mix: WorkloadMix::new([0.26, 0.08, 0.0, 0.04, 0.27, 0.27, 0.08]),
            arrival_rate_qps: None,
            clients: 32,
            data_size_gib: 18.0,
            skew: 0.4,
            avg_rows_per_read: 15.0,
            avg_join_tables: 1.5,
            avg_selectivity: 0.1,
            index_coverage: 0.95,
        }
    }

    #[test]
    fn run_interval_produces_positive_throughput() {
        let mut db = SimDatabase::new(1);
        db.apply_dba_default();
        let eval = db.run_interval(&tpcc_like(), 180.0);
        assert!(!eval.outcome.failed);
        assert!(eval.outcome.throughput_tps > 0.0);
        assert!(eval.transactions() > 0.0);
        assert_eq!(db.intervals_run(), 1);
        assert_eq!(db.failures(), 0);
    }

    #[test]
    fn data_grows_under_write_heavy_workload() {
        let mut db = SimDatabase::new(2);
        db.apply_dba_default();
        db.set_data_size(18.0);
        let wl = tpcc_like();
        for _ in 0..50 {
            db.run_interval(&wl, 180.0);
        }
        let size = db.data_size_gib().unwrap();
        assert!(size > 18.5, "data should grow, got {size}");
        // Growth over 400 intervals should land in the tens of GiB, not explode.
        assert!(size < 30.0, "growth too fast after 50 intervals: {size}");
    }

    #[test]
    fn read_only_workload_does_not_grow_data() {
        let mut db = SimDatabase::new(3);
        db.apply_dba_default();
        db.set_data_size(9.0);
        let mut wl = tpcc_like();
        wl.mix = WorkloadMix::new([1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        db.run_interval(&wl, 180.0);
        assert!((db.data_size_gib().unwrap() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn failure_is_counted_and_returns_zero_throughput() {
        let mut db = SimDatabase::new(4);
        let cat = db.catalogue().clone();
        let mut bad = Configuration::dba_default(&cat);
        bad.set(
            &cat,
            "innodb_buffer_pool_size",
            15.0 * 1024.0 * 1024.0 * 1024.0,
        );
        bad.set(&cat, "sort_buffer_size", 256.0 * 1024.0 * 1024.0);
        bad.set(&cat, "join_buffer_size", 256.0 * 1024.0 * 1024.0);
        bad.set(&cat, "tmp_table_size", 1024.0 * 1024.0 * 1024.0);
        bad.set(&cat, "max_heap_table_size", 1024.0 * 1024.0 * 1024.0);
        db.apply_config(&bad);
        let eval = db.run_interval(&tpcc_like(), 180.0);
        assert!(eval.outcome.failed);
        assert_eq!(eval.outcome.throughput_tps, 0.0);
        assert_eq!(db.failures(), 1);
    }

    #[test]
    fn deterministic_mode_is_reproducible_and_noise_mode_varies() {
        let wl = tpcc_like();
        let mut det = SimDatabase::new(7);
        det.set_deterministic(true);
        det.apply_dba_default();
        det.set_data_size(18.0);
        let a = det.run_interval(&wl, 180.0).outcome.throughput_tps;
        let mut det2 = SimDatabase::new(99);
        det2.set_deterministic(true);
        det2.apply_dba_default();
        det2.set_data_size(18.0);
        let b = det2.run_interval(&wl, 180.0).outcome.throughput_tps;
        assert_eq!(a, b);

        let mut noisy = SimDatabase::new(7);
        noisy.apply_dba_default();
        noisy.set_data_size(18.0);
        let mut values = Vec::new();
        for _ in 0..5 {
            let mut fresh = tpcc_like();
            fresh.data_size_gib = 18.0;
            values.push(noisy.run_interval(&fresh, 180.0).outcome.throughput_tps);
        }
        let spread = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.0, "noise should produce some spread");
    }

    #[test]
    fn peek_does_not_mutate_state() {
        let mut db = SimDatabase::new(5);
        db.apply_dba_default();
        db.set_data_size(18.0);
        let cat = db.catalogue().clone();
        let cfg = Configuration::vendor_default(&cat);
        let before_intervals = db.intervals_run();
        let before_size = db.data_size_gib();
        let outcome = db.peek(&cfg, &tpcc_like());
        assert!(outcome.throughput_tps > 0.0);
        assert_eq!(db.intervals_run(), before_intervals);
        assert_eq!(db.data_size_gib(), before_size);
    }

    #[test]
    fn hardware_resize_changes_the_performance_model_immediately() {
        let mut db = SimDatabase::new(8);
        db.set_deterministic(true);
        db.apply_dba_default();
        db.set_data_size(18.0);
        let wl = tpcc_like();
        let small = db.peek(db.current_config(), &wl).throughput_tps;
        let mut bigger = *db.hardware();
        bigger.vcpus *= 4;
        bigger.ram_gib *= 4.0;
        bigger.disk_iops *= 4.0;
        db.set_hardware(bigger);
        assert_eq!(db.hardware().vcpus, 32);
        let large = db.peek(db.current_config(), &wl).throughput_tps;
        assert!(
            large > small,
            "4x hardware must not slow the model down: {large} vs {small}"
        );
        // The resize survives a snapshot round-trip.
        let restored = SimDatabase::restore(db.snapshot()).unwrap();
        assert_eq!(restored.hardware(), &bigger);
    }

    #[test]
    fn scale_data_multiplies_the_tracked_size_and_ignores_untracked() {
        let mut db = SimDatabase::new(9);
        db.scale_data(2.0); // not tracked yet: no-op
        assert!(db.data_size_gib().is_none());
        db.set_data_size(10.0);
        db.scale_data(1.5);
        assert!((db.data_size_gib().unwrap() - 15.0).abs() < 1e-12);
        db.scale_data(0.0); // clamped to the minimum tracked size, never negative
        assert!(db.data_size_gib().unwrap() > 0.0);
    }

    #[test]
    fn injected_failure_destroys_the_interval_but_not_the_instance() {
        let mut db = SimDatabase::new(11);
        db.set_deterministic(true);
        db.apply_dba_default();
        db.set_data_size(18.0);
        let wl = tpcc_like();
        db.inject_faults(FaultKind::Failure, 1);
        let size_before = db.data_size_gib().unwrap();
        let faulted = db.run_interval(&wl, 180.0);
        assert_eq!(faulted.fault, Some(FaultKind::Failure));
        assert!(faulted.outcome.failed);
        assert_eq!(faulted.outcome.throughput_tps, 0.0);
        assert!(
            (db.data_size_gib().unwrap() - size_before).abs() < 1e-12,
            "a destroyed interval must not grow data"
        );
        assert_eq!(db.failures(), 0, "injected faults are not organic failures");
        assert_eq!(db.faults_injected(), 1);
        // The next interval is clean again.
        let clean = db.run_interval(&wl, 180.0);
        assert_eq!(clean.fault, None);
        assert!(!clean.outcome.failed);
    }

    #[test]
    fn corrupting_faults_garble_only_the_report() {
        let wl = tpcc_like();
        let mut faulty = SimDatabase::new(12);
        faulty.set_deterministic(true);
        faulty.apply_dba_default();
        faulty.set_data_size(18.0);
        faulty.inject_faults(FaultKind::CorruptNan, 1);
        faulty.inject_faults(FaultKind::CorruptScale, 1);

        let mut clean = SimDatabase::new(12);
        clean.set_deterministic(true);
        clean.apply_dba_default();
        clean.set_data_size(18.0);

        let nan_eval = faulty.run_interval(&wl, 180.0);
        assert_eq!(nan_eval.fault, Some(FaultKind::CorruptNan));
        assert!(nan_eval.outcome.throughput_tps.is_nan());
        let scale_eval = faulty.run_interval(&wl, 180.0);
        assert_eq!(scale_eval.fault, Some(FaultKind::CorruptScale));
        assert!(scale_eval.outcome.throughput_tps.is_finite());

        clean.run_interval(&wl, 180.0);
        clean.run_interval(&wl, 180.0);
        // The true trajectory (data growth) is identical to the un-faulted twin.
        assert_eq!(faulty.data_size_gib(), clean.data_size_gib());
        assert!(faulty.data_size_gib().unwrap().is_finite());
    }

    #[test]
    fn fault_schedule_survives_a_snapshot_round_trip() {
        let wl = tpcc_like();
        let mut db = SimDatabase::new(13);
        db.apply_dba_default();
        db.set_data_size(18.0);
        db.inject_faults(FaultKind::Timeout, 2);
        db.inject_seeded_faults(FaultKind::CorruptNan, 0.5, 8, 99);
        db.run_interval(&wl, 180.0); // consume one scripted fault
        let mut twin = SimDatabase::restore(db.snapshot()).unwrap();
        for _ in 0..9 {
            let a = db.run_interval(&wl, 180.0);
            let b = twin.run_interval(&wl, 180.0);
            assert_eq!(a.fault, b.fault);
            assert_eq!(a.outcome.failed, b.outcome.failed);
        }
        assert_eq!(db.faults_injected(), twin.faults_injected());
    }

    #[test]
    fn apply_config_sanitizes_values() {
        let mut db = SimDatabase::new(6);
        let cat = db.catalogue().clone();
        let mut crazy = Configuration::vendor_default(&cat);
        // Out-of-domain values must be clamped by apply_config.
        let values: Vec<f64> = crazy.values().iter().map(|_| 1e20).collect();
        crazy = Configuration::from_values(&cat, values);
        db.apply_config(&crazy);
        for (v, k) in db.current_config().values().iter().zip(cat.knobs()) {
            assert!(*v <= k.max());
        }
    }
}
