//! Hardware description of the simulated cloud instance.

use serde::{Deserialize, Serialize};

/// Hardware resources of the database instance.
///
/// The paper's experiments run on an 8 vCPU / 16 GB RDS instance; that is the default here.
/// The OnlineTune design discussion (§5.1.2) notes that hardware changes can be handled by
/// encoding hardware into the context or re-initializing the tuning task — the scenario
/// engine scripts exactly such changes: `SimDatabase::set_hardware` resizes a running
/// instance in place, and a fleet `Migrate` event re-initializes the tuning task on the
/// new hardware class with a knowledge-base warm start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Number of virtual CPUs.
    pub vcpus: usize,
    /// Physical memory in GiB.
    pub ram_gib: f64,
    /// Sustained random IOPS of the attached storage.
    pub disk_iops: f64,
    /// Sequential bandwidth of the attached storage in MiB/s.
    pub disk_mib_per_s: f64,
    /// Average latency of a single random IO in milliseconds.
    pub io_latency_ms: f64,
}

impl Default for HardwareSpec {
    fn default() -> Self {
        HardwareSpec {
            vcpus: 8,
            ram_gib: 16.0,
            disk_iops: 8000.0,
            disk_mib_per_s: 350.0,
            io_latency_ms: 0.25,
        }
    }
}

impl HardwareSpec {
    /// Memory available to the DBMS after the OS, monitoring agents and connection overhead
    /// (the simulator reserves 1.5 GiB, which is typical for a managed cloud instance).
    pub fn usable_ram_bytes(&self) -> f64 {
        ((self.ram_gib - 1.5).max(0.5)) * 1024.0 * 1024.0 * 1024.0
    }

    /// Total physical memory in bytes.
    pub fn total_ram_bytes(&self) -> f64 {
        self.ram_gib * 1024.0 * 1024.0 * 1024.0
    }

    /// A copy of this spec with every capacity axis (vCPUs, RAM, IOPS, bandwidth) scaled
    /// by `factor`; per-IO latency is a device property and stays unchanged. vCPUs are
    /// rounded and never drop below 1. Scenario resize events use this to express "double
    /// the instance" without enumerating fields.
    pub fn scaled(&self, factor: f64) -> HardwareSpec {
        let factor = factor.max(0.0);
        HardwareSpec {
            vcpus: ((self.vcpus as f64 * factor).round() as usize).max(1),
            ram_gib: self.ram_gib * factor,
            disk_iops: self.disk_iops * factor,
            disk_mib_per_s: self.disk_mib_per_s * factor,
            io_latency_ms: self.io_latency_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let hw = HardwareSpec::default();
        assert_eq!(hw.vcpus, 8);
        assert_eq!(hw.ram_gib, 16.0);
    }

    #[test]
    fn usable_ram_is_less_than_total() {
        let hw = HardwareSpec::default();
        assert!(hw.usable_ram_bytes() < hw.total_ram_bytes());
        assert!(hw.usable_ram_bytes() > 0.0);
    }

    #[test]
    fn scaled_doubles_capacity_but_not_latency() {
        let hw = HardwareSpec::default();
        let big = hw.scaled(2.0);
        assert_eq!(big.vcpus, 16);
        assert_eq!(big.ram_gib, 32.0);
        assert_eq!(big.disk_iops, 16000.0);
        assert_eq!(big.io_latency_ms, hw.io_latency_ms);
        // Shrinking never reaches zero vCPUs.
        assert_eq!(hw.scaled(0.01).vcpus, 1);
    }

    #[test]
    fn tiny_instance_still_has_positive_usable_ram() {
        let hw = HardwareSpec {
            ram_gib: 1.0,
            ..HardwareSpec::default()
        };
        assert!(hw.usable_ram_bytes() > 0.0);
    }
}
