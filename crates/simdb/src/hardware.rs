//! Hardware description of the simulated cloud instance.

use serde::{Deserialize, Serialize};

/// Hardware resources of the database instance.
///
/// The paper's experiments run on an 8 vCPU / 16 GB RDS instance; that is the default here.
/// The OnlineTune design discussion (§5.1.2) notes that hardware changes can be handled by
/// encoding hardware into the context or re-initializing the tuning task — the experiment
/// harness keeps hardware fixed, as the paper does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Number of virtual CPUs.
    pub vcpus: usize,
    /// Physical memory in GiB.
    pub ram_gib: f64,
    /// Sustained random IOPS of the attached storage.
    pub disk_iops: f64,
    /// Sequential bandwidth of the attached storage in MiB/s.
    pub disk_mib_per_s: f64,
    /// Average latency of a single random IO in milliseconds.
    pub io_latency_ms: f64,
}

impl Default for HardwareSpec {
    fn default() -> Self {
        HardwareSpec {
            vcpus: 8,
            ram_gib: 16.0,
            disk_iops: 8000.0,
            disk_mib_per_s: 350.0,
            io_latency_ms: 0.25,
        }
    }
}

impl HardwareSpec {
    /// Memory available to the DBMS after the OS, monitoring agents and connection overhead
    /// (the simulator reserves 1.5 GiB, which is typical for a managed cloud instance).
    pub fn usable_ram_bytes(&self) -> f64 {
        ((self.ram_gib - 1.5).max(0.5)) * 1024.0 * 1024.0 * 1024.0
    }

    /// Total physical memory in bytes.
    pub fn total_ram_bytes(&self) -> f64 {
        self.ram_gib * 1024.0 * 1024.0 * 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let hw = HardwareSpec::default();
        assert_eq!(hw.vcpus, 8);
        assert_eq!(hw.ram_gib, 16.0);
    }

    #[test]
    fn usable_ram_is_less_than_total() {
        let hw = HardwareSpec::default();
        assert!(hw.usable_ram_bytes() < hw.total_ram_bytes());
        assert!(hw.usable_ram_bytes() > 0.0);
    }

    #[test]
    fn tiny_instance_still_has_positive_usable_ram() {
        let hw = HardwareSpec {
            ram_gib: 1.0,
            ..HardwareSpec::default()
        };
        assert!(hw.usable_ram_bytes() > 0.0);
    }
}
