//! Measurement-noise model.
//!
//! Benchmarking a database for a short interval yields noisy numbers: the shorter the
//! interval, the higher the variance (warm-up effects, checkpoint timing, client ramping).
//! The paper's sensitivity analysis (§7.3.3) observes "significant performance variance for
//! 5-second intervals on a fixed configuration" and worse tuning behaviour at that interval.
//! We model relative noise whose standard deviation scales with `1/sqrt(interval)` around a
//! floor, which reproduces exactly that ordering.

use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Multiplicative noise model for interval measurements.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NoiseModel {
    /// Relative standard deviation at the reference interval.
    pub base_rel_std: f64,
    /// Reference interval in seconds (the paper's default interval is 180 s).
    pub reference_interval_s: f64,
    /// Lower bound on the relative standard deviation for very long intervals.
    pub floor_rel_std: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            base_rel_std: 0.02,
            reference_interval_s: 180.0,
            floor_rel_std: 0.005,
        }
    }
}

impl NoiseModel {
    /// Relative standard deviation for a given interval length.
    pub fn rel_std(&self, interval_s: f64) -> f64 {
        let interval = interval_s.max(1.0);
        let scaled = self.base_rel_std * (self.reference_interval_s / interval).sqrt();
        scaled.max(self.floor_rel_std)
    }

    /// Draws a multiplicative noise factor (mean 1.0) for an interval of the given length.
    pub fn sample_factor<R: Rng>(&self, interval_s: f64, rng: &mut R) -> f64 {
        let std = self.rel_std(interval_s);
        let normal = Normal::new(1.0, std).expect("std is finite and positive");
        normal.sample(rng).clamp(0.5, 1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shorter_intervals_are_noisier() {
        let nm = NoiseModel::default();
        assert!(nm.rel_std(5.0) > nm.rel_std(60.0));
        assert!(nm.rel_std(60.0) > nm.rel_std(180.0));
        assert!(nm.rel_std(720.0) >= nm.floor_rel_std);
    }

    #[test]
    fn factors_are_centred_on_one() {
        let nm = NoiseModel::default();
        let mut rng = StdRng::seed_from_u64(0);
        let samples: Vec<f64> = (0..5000)
            .map(|_| nm.sample_factor(180.0, &mut rng))
            .collect();
        let mean = linalg::vecops::mean(&samples);
        assert!((mean - 1.0).abs() < 0.01, "mean = {mean}");
        assert!(samples.iter().all(|&f| (0.5..=1.5).contains(&f)));
    }

    #[test]
    fn five_second_interval_shows_visibly_more_variance() {
        let nm = NoiseModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let short: Vec<f64> = (0..2000).map(|_| nm.sample_factor(5.0, &mut rng)).collect();
        let long: Vec<f64> = (0..2000)
            .map(|_| nm.sample_factor(720.0, &mut rng))
            .collect();
        assert!(linalg::vecops::std_dev(&short) > 2.0 * linalg::vecops::std_dev(&long));
    }

    #[test]
    fn degenerate_interval_is_clamped() {
        let nm = NoiseModel::default();
        assert!(nm.rel_std(0.0).is_finite());
    }
}
