//! The analytical performance model of the simulated MySQL instance.
//!
//! Given a configuration, a workload and the hardware, the model computes deterministic
//! throughput / latency figures plus the internal metrics. The goal is not to predict real
//! MySQL numbers but to reproduce the *response surface structure* that configuration
//! tuners experience:
//!
//! * the buffer pool exhibits diminishing returns that saturate once the hot set fits;
//! * per-connection buffers trade session memory against spill-to-disk penalties;
//! * the sum of all memory consumers can exceed physical RAM — first swapping, then
//!   hanging the instance (the "system failures" of Figure 1c / Figure 5);
//! * commit-durability knobs (`innodb_flush_log_at_trx_commit`, `sync_binlog`) only matter
//!   for write-heavy workloads; sort/join/temp-table knobs only matter for analytical ones;
//! * `innodb_thread_concurrency` is non-ordinal: 0 means unlimited, small positive values
//!   strangle an 8-vCPU box (§7.3.2's motivating example for white-box rules);
//! * redo-log sizing and IO-capacity interact with the write rate (checkpoint stalls).
//!
//! The model is pure (no RNG); measurement noise is added by [`crate::instance`].

use crate::config::Configuration;
use crate::hardware::HardwareSpec;
use crate::knobs::KnobCatalogue;
use crate::metrics::{InternalMetrics, PerformanceOutcome};
use crate::workload::{QueryClass, WorkloadSpec};

const MIB: f64 = 1024.0 * 1024.0;
#[allow(dead_code)]
const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Latency (ms) reported for a hung instance; also the value used when a query is killed
/// because it exceeded the tuning interval (JOB-style workloads).
pub const FAILURE_LATENCY_MS: f64 = 200_000.0;

/// Deterministic output of the performance model for one interval.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelOutput {
    /// Throughput / latency outcome before measurement noise.
    pub outcome: PerformanceOutcome,
    /// Internal metrics snapshot.
    pub metrics: InternalMetrics,
    /// Total memory the configuration commits, in bytes.
    pub committed_memory_bytes: f64,
}

/// Resolves knob values by name: values present in the (possibly reduced) catalogue come
/// from the configuration, everything else falls back to the full-catalogue DBA default —
/// this is how the 5-knob YCSB case study runs on an otherwise DBA-configured instance.
struct KnobResolver<'a> {
    catalogue: &'a KnobCatalogue,
    config: &'a Configuration,
    full: KnobCatalogue,
}

impl<'a> KnobResolver<'a> {
    fn new(catalogue: &'a KnobCatalogue, config: &'a Configuration) -> Self {
        KnobResolver {
            catalogue,
            config,
            full: KnobCatalogue::mysql57(),
        }
    }

    fn get(&self, name: &str) -> f64 {
        if let Some(v) = self.config.get(self.catalogue, name) {
            return v;
        }
        let idx = self
            .full
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown knob {name}"));
        self.full.knob(idx).dba_default
    }
}

/// Evaluates the performance model.
pub fn evaluate(
    catalogue: &KnobCatalogue,
    config: &Configuration,
    workload: &WorkloadSpec,
    hardware: &HardwareSpec,
) -> ModelOutput {
    let k = KnobResolver::new(catalogue, config);

    // ---------------------------------------------------------------- memory accounting
    let buffer_pool = k.get("innodb_buffer_pool_size");
    let log_buffer = k.get("innodb_log_buffer_size");
    let key_buffer = k.get("key_buffer_size");
    let query_cache = k.get("query_cache_size");
    let sort_buffer = k.get("sort_buffer_size");
    let join_buffer = k.get("join_buffer_size");
    let read_buffer = k.get("read_buffer_size");
    let read_rnd_buffer = k.get("read_rnd_buffer_size");
    let binlog_cache = k.get("binlog_cache_size");
    let tmp_table_limit = k.get("tmp_table_size").min(k.get("max_heap_table_size"));
    let max_connections = k.get("max_connections");

    let active_connections = (workload.clients as f64).min(max_connections);
    // Roughly half of the connected clients have a statement in flight at any instant.
    let concurrently_active = (active_connections * 0.5).max(1.0);
    let per_connection = sort_buffer + join_buffer + read_buffer + read_rnd_buffer + binlog_cache;
    let analytical = workload.mix.analytical_fraction();
    let tmp_memory = tmp_table_limit * concurrently_active * (0.15 + 0.5 * analytical);
    let session_memory = per_connection * concurrently_active + tmp_memory;
    let global_memory = buffer_pool + key_buffer + query_cache + log_buffer + 300.0 * MIB;
    let committed = global_memory + session_memory;

    let usable = hardware.usable_ram_bytes();
    let total_ram = hardware.total_ram_bytes();
    let memory_pressure = committed / total_ram;

    if committed > total_ram {
        // Overcommit beyond physical RAM: the OOM killer / swap storm hangs the instance.
        let mut metrics = InternalMetrics::zeroed();
        metrics.memory_pressure = memory_pressure;
        return ModelOutput {
            outcome: PerformanceOutcome::failure(FAILURE_LATENCY_MS),
            metrics,
            committed_memory_bytes: committed,
        };
    }
    // Between "usable" and physical RAM the kernel starts swapping: heavy slowdown.
    let swap_penalty = if committed > usable {
        let severity = (committed - usable) / (total_ram - usable).max(1.0);
        1.0 - 0.65 * severity.clamp(0.0, 1.0)
    } else {
        1.0
    };

    // ---------------------------------------------------------------- buffer pool / reads
    let hot_bytes = workload.hot_bytes().max(64.0 * MIB);
    let change_buffer_frac = k.get("innodb_change_buffer_max_size") / 100.0;
    let write_fraction = workload.mix.write_fraction();
    // A slice of the pool is occupied by the change buffer when writes are present.
    let effective_pool = buffer_pool * (1.0 - 0.5 * change_buffer_frac * write_fraction);
    let coverage = (effective_pool / hot_bytes).min(1.0);
    let scan_resistance = {
        // innodb_old_blocks_pct protects the hot set from large scans.
        let old_pct = k.get("innodb_old_blocks_pct") / 100.0;
        if analytical > 0.05 && workload.mix.read_fraction() > 0.0 {
            1.0 - 0.1 * analytical * (old_pct - 0.37).abs()
        } else {
            1.0
        }
    };
    let hit_ratio = (0.15 + 0.85 * coverage.powf(0.8)) * scan_resistance;
    let hit_ratio = hit_ratio.clamp(0.02, 0.998);

    // Pages touched per query, per class.
    let rows_to_pages = |rows: f64| (rows / 60.0).max(1.0) + 2.0; // ~60 rows per 16K page + index descent
    let pages_per_class = |class: QueryClass| -> f64 {
        match class {
            QueryClass::PointSelect => 3.0,
            QueryClass::RangeSelect => rows_to_pages(workload.avg_rows_per_read),
            QueryClass::Join => {
                rows_to_pages(workload.avg_rows_per_read * workload.avg_join_tables * 40.0)
            }
            QueryClass::Aggregate => rows_to_pages(workload.avg_rows_per_read * 25.0),
            QueryClass::Insert => 3.0,
            QueryClass::Update => 4.0,
            QueryClass::Delete => 4.0,
        }
    };

    let read_io_threads = k.get("innodb_read_io_threads");
    let io_parallel = (read_io_threads / 4.0).sqrt().clamp(0.5, 2.0);
    let adaptive_hash = k.get("innodb_adaptive_hash_index") >= 0.5;
    let flush_method_odirect = k.get("innodb_flush_method") >= 0.5;
    // fsync flush method double-buffers through the page cache, wasting a bit of RAM and IO.
    let flush_method_factor = if flush_method_odirect { 1.0 } else { 0.95 };

    // ---------------------------------------------------------------- per-class service time
    let cpu_speed = 1.0; // relative units; vcpus scale total capacity below
    let sort_spill = |required: f64| -> f64 {
        if sort_buffer >= required {
            1.0
        } else {
            1.0 + 1.8 * (required / sort_buffer.max(1.0)).log2().clamp(0.0, 4.0) / 4.0
        }
    };
    let join_spill = |required: f64| -> f64 {
        if join_buffer >= required {
            1.0
        } else {
            1.0 + 1.5 * (required / join_buffer.max(1.0)).log2().clamp(0.0, 4.0) / 4.0
        }
    };
    let tmp_spill = |required: f64| -> f64 {
        if tmp_table_limit >= required {
            1.0
        } else {
            2.2
        }
    };

    // Commit path cost (per write transaction, ms).
    let flush_log = k.get("innodb_flush_log_at_trx_commit").round() as i64;
    let sync_binlog = k.get("sync_binlog");
    let group_commit = concurrently_active.sqrt().max(1.0);
    let redo_sync_ms = match flush_log {
        1 => 0.45 / group_commit,
        2 => 0.06,
        _ => 0.02,
    };
    let binlog_sync_ms = if sync_binlog >= 1.0 {
        0.35 / (sync_binlog * group_commit)
    } else {
        0.0
    };
    let doublewrite = k.get("innodb_doublewrite") >= 0.5;
    let doublewrite_factor = if doublewrite { 1.12 } else { 1.0 };

    // Log buffer too small for the write volume produces log waits.
    let log_waits_factor = if write_fraction > 0.05 && log_buffer < 8.0 * MIB {
        1.0 + 0.15 * (8.0 * MIB / log_buffer.max(1.0)).log2() / 6.0
    } else {
        1.0
    };

    // Redo log sizing: write-heavy workloads need enough redo capacity or they stall on
    // sharp checkpoints.
    let log_file_size = k.get("innodb_log_file_size");
    let write_intensity = write_fraction * concurrently_active; // rough write pressure
    let needed_redo = 96.0 * MIB + write_intensity * 48.0 * MIB;
    let checkpoint_stall = ((needed_redo / (2.0 * log_file_size)) - 1.0).clamp(0.0, 2.0) * 0.18;

    // Background flushing capacity: dirty pages pile up when io_capacity is far below what
    // the write rate needs.
    let io_capacity = k.get("innodb_io_capacity");
    let needed_iocap = 150.0 + write_intensity * 120.0;
    let flush_lag = ((needed_iocap / io_capacity.max(1.0)) - 1.0).clamp(0.0, 3.0);
    let flush_stall = flush_lag * 0.06;
    let max_dirty = k.get("innodb_max_dirty_pages_pct");
    let dirty_penalty = if max_dirty < 10.0 {
        0.08 * write_fraction
    } else if max_dirty > 90.0 {
        0.04 * write_fraction * flush_lag.min(1.0)
    } else {
        0.0
    };

    // Query cache: mostly harmful under writes (global mutex), mildly useful read-only.
    let query_cache_on = k.get("query_cache_type") >= 0.5 && query_cache > 0.0;
    let query_cache_factor = if query_cache_on {
        if write_fraction > 0.05 {
            1.0 + 0.10 * write_fraction
        } else {
            0.97
        }
    } else {
        1.0
    };

    // Thread cache: creating threads for every connection costs a little.
    let thread_cache = k.get("thread_cache_size");
    let thread_churn_factor = if thread_cache < 16.0 && workload.clients > 64 {
        1.03
    } else {
        1.0
    };

    // Table cache too small for many tables (JOB has hundreds of table references).
    let table_cache = k.get("table_open_cache");
    let table_cache_factor = if analytical > 0.3 && table_cache < 1000.0 {
        1.05
    } else {
        1.0
    };

    let rows_scan = workload.avg_rows_per_read.max(1.0);
    let per_row_bytes = 100.0;
    let mut service_ms = 0.0;
    let mut spill_ratio_acc = 0.0;
    let mut tmp_disk_acc = 0.0;
    for class in QueryClass::ALL {
        let w = workload.mix.weight(class);
        if w <= 0.0 {
            continue;
        }
        let pages = pages_per_class(class);
        let misses = pages * (1.0 - hit_ratio);
        let io_ms = misses * hardware.io_latency_ms / io_parallel * flush_method_factor;
        let cpu_ms = match class {
            QueryClass::PointSelect => {
                let base = 0.08;
                if adaptive_hash && workload.skew > 0.4 {
                    base * 0.88
                } else {
                    base
                }
            }
            QueryClass::RangeSelect => 0.15 + rows_scan / 8000.0,
            QueryClass::Join => {
                let rows_join = rows_scan * workload.avg_join_tables * 40.0;
                let required_join_mem = rows_join * per_row_bytes * 0.3;
                let no_index_frac = 1.0 - workload.index_coverage;
                let spill = 1.0 + no_index_frac * (join_spill(required_join_mem) - 1.0);
                spill_ratio_acc += w * no_index_frac * (spill > 1.001) as i32 as f64;
                let tmp_required = rows_join * per_row_bytes * 0.15;
                let tmp = tmp_spill(tmp_required);
                tmp_disk_acc += w * (tmp > 1.001) as i32 as f64;
                (1.2 + rows_join / 15000.0) * spill * tmp * table_cache_factor
            }
            QueryClass::Aggregate => {
                let rows_agg = rows_scan * 25.0;
                let required_sort_mem = rows_agg * per_row_bytes * 0.5;
                let spill = sort_spill(required_sort_mem);
                spill_ratio_acc += w * (spill > 1.001) as i32 as f64;
                let tmp_required = rows_agg * per_row_bytes * 0.25;
                let tmp = tmp_spill(tmp_required);
                tmp_disk_acc += w * (tmp > 1.001) as i32 as f64;
                (0.6 + rows_agg / 20000.0) * spill * tmp
            }
            QueryClass::Insert => 0.10 * doublewrite_factor * log_waits_factor,
            QueryClass::Update => 0.13 * doublewrite_factor * log_waits_factor,
            QueryClass::Delete => 0.13 * doublewrite_factor * log_waits_factor,
        };
        let commit_ms = if class.is_write() {
            redo_sync_ms + binlog_sync_ms
        } else {
            0.0
        };
        service_ms += w * (cpu_ms / cpu_speed + io_ms + commit_ms);
    }
    service_ms *= query_cache_factor * thread_churn_factor;

    // ---------------------------------------------------------------- concurrency scaling
    let thread_concurrency = k.get("innodb_thread_concurrency");
    let allowed_threads = if thread_concurrency < 0.5 {
        workload.clients as f64
    } else {
        thread_concurrency.min(workload.clients as f64)
    };
    let cpu_bound_parallelism = (hardware.vcpus as f64 * 1.6).min(allowed_threads.max(1.0));
    // Lock / latch contention reduces scaling, more so for write-heavy and skewed loads.
    let contention_exponent = 1.0 - 0.22 * write_fraction - 0.12 * workload.skew * write_fraction;
    let mut effective_parallelism = cpu_bound_parallelism.powf(contention_exponent.clamp(0.5, 1.0));

    // Spin-wait tuning has a mild effect around a broad sweet spot (~6).
    let spin = k.get("innodb_spin_wait_delay");
    let spin_dev = ((spin + 1.0).ln() - 7.0f64.ln()).abs() / 1000.0f64.ln();
    effective_parallelism *= 1.0 - 0.08 * spin_dev * write_fraction.max(0.2);

    // Purge lag for update-heavy workloads with too few purge threads.
    let purge_threads = k.get("innodb_purge_threads");
    if workload.mix.weight(QueryClass::Update) > 0.2 && purge_threads < 2.0 {
        effective_parallelism *= 0.96;
    }

    let stall_factor = (1.0 - checkpoint_stall - flush_stall - dirty_penalty).clamp(0.2, 1.0);
    let capacity_tps =
        1000.0 / service_ms.max(1e-3) * effective_parallelism * stall_factor * swap_penalty;

    let offered = workload.arrival_rate_qps.unwrap_or(f64::INFINITY);
    let throughput = capacity_tps.min(offered).max(0.1);
    let utilization = (throughput / capacity_tps).clamp(0.0, 1.0);

    // Latency: base service time, queueing knee as utilization approaches 1, plus stalls.
    let queueing = 1.0 + 2.5 * utilization.powi(3);
    let latency_avg_ms = service_ms * queueing / swap_penalty / stall_factor;
    let tail_factor = 3.0
        + 4.0 * write_fraction
        + 6.0 * (checkpoint_stall + flush_stall)
        + 2.0 * (1.0 - hit_ratio);
    let latency_p99_ms = (latency_avg_ms * tail_factor).min(FAILURE_LATENCY_MS);

    // ---------------------------------------------------------------- internal metrics
    let reads_per_sec = throughput * workload.mix.read_fraction();
    let writes_per_sec = throughput * write_fraction;
    let metrics = InternalMetrics {
        buffer_pool_hit_ratio: hit_ratio,
        dirty_page_ratio: (0.1 + 0.6 * write_fraction * (1.0 + flush_lag)).clamp(0.0, 0.95),
        reads_per_sec,
        writes_per_sec,
        log_waits_per_sec: (log_waits_factor - 1.0) * writes_per_sec * 10.0,
        sort_merge_spill_ratio: spill_ratio_acc.clamp(0.0, 1.0),
        tmp_disk_table_ratio: tmp_disk_acc.clamp(0.0, 1.0),
        joins_without_index_ratio: (1.0 - workload.index_coverage) * analytical,
        threads_running: effective_parallelism,
        lock_waits_per_sec: write_fraction * throughput * 0.02 * workload.skew,
        checkpoint_stall_ratio: checkpoint_stall + flush_stall,
        memory_pressure,
        disk_reads_per_sec: reads_per_sec * (1.0 - hit_ratio) * 3.0,
        disk_writes_per_sec: writes_per_sec * doublewrite_factor * 2.0,
        cpu_utilization: (effective_parallelism / hardware.vcpus as f64).clamp(0.05, 1.0),
        threads_created: if thread_cache < workload.clients as f64 {
            (workload.clients as f64 - thread_cache).max(0.0)
        } else {
            0.0
        },
    };

    ModelOutput {
        outcome: PerformanceOutcome {
            throughput_tps: throughput,
            latency_avg_ms,
            latency_p99_ms,
            failed: false,
        },
        metrics,
        committed_memory_bytes: committed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadMix;

    fn setup() -> (KnobCatalogue, HardwareSpec, WorkloadSpec) {
        (
            KnobCatalogue::mysql57(),
            HardwareSpec::default(),
            WorkloadSpec::synthetic_oltp(),
        )
    }

    fn olap_workload() -> WorkloadSpec {
        WorkloadSpec {
            name: "olap".into(),
            mix: WorkloadMix::new([0.0, 0.0, 0.6, 0.4, 0.0, 0.0, 0.0]),
            arrival_rate_qps: None,
            clients: 8,
            data_size_gib: 9.0,
            skew: 0.1,
            avg_rows_per_read: 5000.0,
            avg_join_tables: 5.0,
            avg_selectivity: 0.02,
            index_coverage: 0.6,
        }
    }

    #[test]
    fn dba_default_beats_vendor_default_on_oltp() {
        let (cat, hw, wl) = setup();
        let vendor = evaluate(&cat, &Configuration::vendor_default(&cat), &wl, &hw);
        let dba = evaluate(&cat, &Configuration::dba_default(&cat), &wl, &hw);
        assert!(!vendor.outcome.failed && !dba.outcome.failed);
        assert!(
            dba.outcome.throughput_tps > vendor.outcome.throughput_tps * 1.2,
            "dba {} vs vendor {}",
            dba.outcome.throughput_tps,
            vendor.outcome.throughput_tps
        );
    }

    #[test]
    fn larger_buffer_pool_helps_until_saturation() {
        let (cat, hw, wl) = setup();
        let mut small = Configuration::dba_default(&cat);
        small.set(&cat, "innodb_buffer_pool_size", 512.0 * MIB);
        let mut medium = Configuration::dba_default(&cat);
        medium.set(&cat, "innodb_buffer_pool_size", 6.0 * GIB);
        let mut large = Configuration::dba_default(&cat);
        large.set(&cat, "innodb_buffer_pool_size", 13.0 * GIB);
        let t_small = evaluate(&cat, &small, &wl, &hw).outcome.throughput_tps;
        let t_medium = evaluate(&cat, &medium, &wl, &hw).outcome.throughput_tps;
        let t_large = evaluate(&cat, &large, &wl, &hw).outcome.throughput_tps;
        assert!(t_medium > t_small);
        assert!(t_large >= t_medium * 0.99);
        // Diminishing returns: the second step helps much less than the first.
        assert!((t_medium - t_small) > (t_large - t_medium));
    }

    #[test]
    fn memory_overcommit_hangs_the_instance() {
        let (cat, hw, wl) = setup();
        let mut cfg = Configuration::dba_default(&cat);
        cfg.set(&cat, "innodb_buffer_pool_size", 15.0 * GIB);
        cfg.set(&cat, "sort_buffer_size", 256.0 * MIB);
        cfg.set(&cat, "join_buffer_size", 256.0 * MIB);
        cfg.set(&cat, "tmp_table_size", 1.0 * GIB);
        cfg.set(&cat, "max_heap_table_size", 1.0 * GIB);
        let out = evaluate(&cat, &cfg, &wl, &hw);
        assert!(out.outcome.failed);
        assert_eq!(out.outcome.throughput_tps, 0.0);
        assert!(out.committed_memory_bytes > hw.total_ram_bytes());
    }

    #[test]
    fn relaxed_durability_helps_write_heavy_workloads_only() {
        let (cat, hw, mut wl) = setup();
        // Write-heavy.
        wl.mix = WorkloadMix::new([0.2, 0.05, 0.0, 0.0, 0.35, 0.3, 0.1]);
        let strict = Configuration::dba_default(&cat);
        let mut relaxed = Configuration::dba_default(&cat);
        relaxed.set(&cat, "innodb_flush_log_at_trx_commit", 2.0);
        relaxed.set(&cat, "sync_binlog", 0.0);
        let t_strict = evaluate(&cat, &strict, &wl, &hw).outcome.throughput_tps;
        let t_relaxed = evaluate(&cat, &relaxed, &wl, &hw).outcome.throughput_tps;
        assert!(t_relaxed > t_strict * 1.05);

        // Read-only: the same change should not matter much.
        let mut ro = wl.clone();
        ro.mix = WorkloadMix::new([0.9, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let r_strict = evaluate(&cat, &strict, &ro, &hw).outcome.throughput_tps;
        let r_relaxed = evaluate(&cat, &relaxed, &ro, &hw).outcome.throughput_tps;
        assert!((r_relaxed - r_strict).abs() / r_strict < 0.02);
    }

    #[test]
    fn sort_and_join_buffers_matter_for_analytical_workloads() {
        let (cat, hw, _) = setup();
        let wl = olap_workload();
        let small = Configuration::dba_default(&cat);
        let mut big = Configuration::dba_default(&cat);
        // Shrink the pool a little to pay for the large per-session buffers without swapping.
        big.set(&cat, "innodb_buffer_pool_size", 10.0 * GIB);
        big.set(&cat, "sort_buffer_size", 64.0 * MIB);
        big.set(&cat, "join_buffer_size", 64.0 * MIB);
        big.set(&cat, "tmp_table_size", 256.0 * MIB);
        big.set(&cat, "max_heap_table_size", 256.0 * MIB);
        let lat_small = evaluate(&cat, &small, &wl, &hw).outcome.latency_p99_ms;
        let lat_big = evaluate(&cat, &big, &wl, &hw).outcome.latency_p99_ms;
        assert!(lat_big < lat_small * 0.9, "{lat_big} vs {lat_small}");
    }

    #[test]
    fn thread_concurrency_of_one_strangles_throughput() {
        let (cat, hw, wl) = setup();
        let unlimited = Configuration::dba_default(&cat);
        let mut strangled = Configuration::dba_default(&cat);
        strangled.set(&cat, "innodb_thread_concurrency", 1.0);
        let t_unlimited = evaluate(&cat, &unlimited, &wl, &hw).outcome.throughput_tps;
        let t_strangled = evaluate(&cat, &strangled, &wl, &hw).outcome.throughput_tps;
        assert!(
            t_strangled < t_unlimited * 0.4,
            "{t_strangled} vs {t_unlimited}"
        );
    }

    #[test]
    fn tiny_redo_log_hurts_write_heavy_workloads() {
        let (cat, hw, mut wl) = setup();
        wl.mix = WorkloadMix::new([0.1, 0.0, 0.0, 0.0, 0.4, 0.4, 0.1]);
        wl.clients = 64;
        let mut tiny = Configuration::dba_default(&cat);
        tiny.set(&cat, "innodb_log_file_size", 48.0 * MIB);
        let big = Configuration::dba_default(&cat);
        let t_tiny = evaluate(&cat, &tiny, &wl, &hw).outcome.throughput_tps;
        let t_big = evaluate(&cat, &big, &wl, &hw).outcome.throughput_tps;
        assert!(t_big > t_tiny * 1.05, "{t_big} vs {t_tiny}");
    }

    #[test]
    fn optimum_location_depends_on_workload_mix() {
        // The knob trade-off the case study (Figure 10) illustrates: large per-session
        // buffers help analytical queries but waste memory (hurting the buffer pool budget /
        // risking swap) for pure OLTP. The best sort_buffer_size therefore differs by mix.
        let (cat, hw, mut oltp) = setup();
        // A data set larger than RAM so that buffer-pool size still matters for OLTP.
        oltp.data_size_gib = 30.0;
        let olap = olap_workload();
        let mut small = Configuration::dba_default(&cat);
        small.set(&cat, "sort_buffer_size", 256.0 * 1024.0);
        small.set(&cat, "innodb_buffer_pool_size", 13.5 * GIB);
        let mut large = Configuration::dba_default(&cat);
        large.set(&cat, "sort_buffer_size", 128.0 * MIB);
        large.set(&cat, "innodb_buffer_pool_size", 10.0 * GIB);

        let oltp_small = evaluate(&cat, &small, &oltp, &hw).outcome.throughput_tps;
        let oltp_large = evaluate(&cat, &large, &oltp, &hw).outcome.throughput_tps;
        let olap_small = 1.0 / evaluate(&cat, &small, &olap, &hw).outcome.latency_p99_ms;
        let olap_large = 1.0 / evaluate(&cat, &large, &olap, &hw).outcome.latency_p99_ms;

        assert!(
            oltp_small > oltp_large,
            "OLTP prefers the memory in the pool"
        );
        assert!(olap_large > olap_small, "OLAP prefers big sort buffers");
    }

    #[test]
    fn query_cache_hurts_under_writes() {
        let (cat, hw, mut wl) = setup();
        wl.mix = WorkloadMix::new([0.3, 0.1, 0.0, 0.0, 0.3, 0.2, 0.1]);
        let off = Configuration::dba_default(&cat);
        let mut on = Configuration::dba_default(&cat);
        on.set(&cat, "query_cache_type", 1.0);
        on.set(&cat, "query_cache_size", 128.0 * MIB);
        let t_off = evaluate(&cat, &off, &wl, &hw).outcome.throughput_tps;
        let t_on = evaluate(&cat, &on, &wl, &hw).outcome.throughput_tps;
        assert!(t_on < t_off);
    }

    #[test]
    fn limited_arrival_rate_caps_throughput_and_reduces_latency() {
        let (cat, hw, mut wl) = setup();
        let cfg = Configuration::dba_default(&cat);
        let unlimited = evaluate(&cat, &cfg, &wl, &hw).outcome;
        wl.arrival_rate_qps = Some(unlimited.throughput_tps * 0.3);
        let limited = evaluate(&cat, &cfg, &wl, &hw).outcome;
        assert!(limited.throughput_tps <= unlimited.throughput_tps * 0.31);
        assert!(limited.latency_avg_ms < unlimited.latency_avg_ms);
    }

    #[test]
    fn metrics_are_internally_consistent() {
        let (cat, hw, wl) = setup();
        let out = evaluate(&cat, &Configuration::dba_default(&cat), &wl, &hw);
        let m = &out.metrics;
        assert!((0.0..=1.0).contains(&m.buffer_pool_hit_ratio));
        assert!((0.0..=1.0).contains(&m.dirty_page_ratio));
        assert!((0.0..=1.0).contains(&m.cpu_utilization));
        assert!(m.reads_per_sec + m.writes_per_sec <= out.outcome.throughput_tps * 1.001);
        assert!(m.memory_pressure > 0.0 && m.memory_pressure < 1.0);
    }

    #[test]
    fn subset_catalogue_falls_back_to_dba_defaults() {
        let full = KnobCatalogue::mysql57();
        let sub = full.subset(&["innodb_buffer_pool_size", "max_heap_table_size"]);
        let hw = HardwareSpec::default();
        let wl = WorkloadSpec::synthetic_oltp();
        // Using the DBA value for the two tuned knobs must equal the full DBA default result.
        let sub_cfg = Configuration::from_values(&sub, vec![13.0 * GIB, 64.0 * MIB]);
        let full_cfg = Configuration::dba_default(&full);
        let a = evaluate(&sub, &sub_cfg, &wl, &hw).outcome.throughput_tps;
        let b = evaluate(&full, &full_cfg, &wl, &hw).outcome.throughput_tps;
        assert!((a - b).abs() < 1e-9);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn prop_model_never_panics_and_outputs_are_sane(
                unit in proptest::collection::vec(0.0f64..1.0, 40),
                write_w in 0.0f64..1.0,
                clients in 1usize..256,
            ) {
                let cat = KnobCatalogue::mysql57();
                let hw = HardwareSpec::default();
                let mut wl = WorkloadSpec::synthetic_oltp();
                wl.clients = clients;
                wl.mix = WorkloadMix::new([1.0 - write_w, 0.1, 0.0, 0.0, write_w, write_w * 0.5, 0.1 * write_w]);
                let cfg = Configuration::from_normalized(&cat, &unit);
                let out = evaluate(&cat, &cfg, &wl, &hw);
                prop_assert!(out.outcome.throughput_tps >= 0.0);
                prop_assert!(out.outcome.latency_p99_ms >= out.outcome.latency_avg_ms * 0.99 || out.outcome.failed);
                prop_assert!(out.outcome.latency_p99_ms <= FAILURE_LATENCY_MS + 1e-9);
                prop_assert!(out.committed_memory_bytes > 0.0);
                if out.outcome.failed {
                    prop_assert!(out.committed_memory_bytes > hw.total_ram_bytes());
                }
            }
        }
    }
}
