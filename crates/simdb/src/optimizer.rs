//! Simulated query-optimizer statistics.
//!
//! OnlineTune's underlying-data featurization (§5.1.2) does not model the data distribution
//! directly; it reads three cheap signals from the DBMS optimizer for the queries of the
//! current interval: the estimated rows to examine, the fraction of rows filtered by the
//! predicates, and whether an index is used. This module derives those signals from the
//! workload spec and the current data size, which is exactly the information a real
//! optimizer's cardinality estimator would use.

use crate::workload::{QueryClass, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// The per-interval optimizer statistics exposed to the featurization module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizerStats {
    /// Average estimated number of rows examined per query (log10-friendly magnitude).
    pub avg_rows_examined: f64,
    /// Average fraction of examined rows filtered out by predicates, in `[0, 1]`.
    pub avg_filter_fraction: f64,
    /// Fraction of queries that use an index, in `[0, 1]`.
    pub index_usage_fraction: f64,
}

impl OptimizerStats {
    /// Derives optimizer statistics for a workload against a given data size.
    pub fn estimate(workload: &WorkloadSpec) -> Self {
        let rows_total = workload.data_size_gib * 1.0e7; // ~100-byte rows

        // Rows examined per query class.
        let per_class_rows = |class: QueryClass| -> f64 {
            match class {
                QueryClass::PointSelect => 1.0,
                QueryClass::RangeSelect => workload.avg_rows_per_read.max(1.0),
                QueryClass::Join => {
                    // Join fan-out grows with the number of participating tables and data size.
                    (rows_total * workload.avg_selectivity).max(1.0)
                        * workload.avg_join_tables.max(1.0)
                }
                QueryClass::Aggregate => (rows_total * workload.avg_selectivity).max(1.0),
                QueryClass::Insert => 1.0,
                QueryClass::Update | QueryClass::Delete => workload.avg_rows_per_read.max(1.0),
            }
        };

        let mut rows = 0.0;
        for class in QueryClass::ALL {
            rows += workload.mix.weight(class) * per_class_rows(class);
        }

        let filter = (1.0 - workload.avg_selectivity).clamp(0.0, 1.0);
        OptimizerStats {
            avg_rows_examined: rows,
            avg_filter_fraction: filter,
            index_usage_fraction: workload.index_coverage.clamp(0.0, 1.0),
        }
    }

    /// The three-dimensional feature vector used for context featurization. Row counts are
    /// log10-compressed so that data growth produces a smooth, bounded signal.
    pub fn to_feature(&self) -> Vec<f64> {
        vec![
            (1.0 + self.avg_rows_examined).log10() / 10.0,
            self.avg_filter_fraction,
            self.index_usage_fraction,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{WorkloadMix, WorkloadSpec};

    #[test]
    fn analytical_workloads_examine_more_rows() {
        let mut oltp = WorkloadSpec::synthetic_oltp();
        let mut olap = WorkloadSpec::synthetic_oltp();
        olap.mix = WorkloadMix::new([0.0, 0.0, 0.7, 0.3, 0.0, 0.0, 0.0]);
        olap.avg_join_tables = 5.0;
        oltp.avg_join_tables = 1.0;
        let s_oltp = OptimizerStats::estimate(&oltp);
        let s_olap = OptimizerStats::estimate(&olap);
        assert!(s_olap.avg_rows_examined > s_oltp.avg_rows_examined * 10.0);
    }

    #[test]
    fn data_growth_increases_rows_examined_for_scans() {
        let mut small = WorkloadSpec::synthetic_oltp();
        small.mix = WorkloadMix::new([0.0, 0.0, 0.5, 0.5, 0.0, 0.0, 0.0]);
        let mut large = small.clone();
        small.data_size_gib = 10.0;
        large.data_size_gib = 40.0;
        let s = OptimizerStats::estimate(&small);
        let l = OptimizerStats::estimate(&large);
        assert!(l.avg_rows_examined > s.avg_rows_examined);
        // ... and the feature encoding reflects it smoothly.
        assert!(l.to_feature()[0] > s.to_feature()[0]);
    }

    #[test]
    fn feature_vector_is_bounded() {
        let spec = WorkloadSpec::synthetic_oltp();
        let f = OptimizerStats::estimate(&spec).to_feature();
        assert_eq!(f.len(), 3);
        for v in f {
            assert!((0.0..=1.5).contains(&v), "{v}");
        }
    }

    #[test]
    fn index_usage_mirrors_workload_coverage() {
        let mut spec = WorkloadSpec::synthetic_oltp();
        spec.index_coverage = 0.3;
        assert_eq!(OptimizerStats::estimate(&spec).index_usage_fraction, 0.3);
    }
}
