//! Configuration vectors: named access, normalization and distance helpers.

use crate::knobs::KnobCatalogue;
use serde::{Deserialize, Serialize};

/// A full configuration: one value per knob, in catalogue order, in native units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    values: Vec<f64>,
}

impl Configuration {
    /// Builds a configuration from raw values (sanitized against the catalogue).
    pub fn from_values(catalogue: &KnobCatalogue, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            catalogue.len(),
            "configuration must have one value per knob"
        );
        let values = values
            .into_iter()
            .zip(catalogue.knobs().iter())
            .map(|(v, k)| k.sanitize(v))
            .collect();
        Configuration { values }
    }

    /// The vendor-default configuration.
    pub fn vendor_default(catalogue: &KnobCatalogue) -> Self {
        Configuration::from_values(catalogue, catalogue.default_values())
    }

    /// The DBA-default configuration.
    pub fn dba_default(catalogue: &KnobCatalogue) -> Self {
        Configuration::from_values(catalogue, catalogue.dba_default_values())
    }

    /// Builds a configuration from a normalized `[0, 1]^m` vector.
    pub fn from_normalized(catalogue: &KnobCatalogue, unit: &[f64]) -> Self {
        let mut cfg = Configuration {
            values: Vec::with_capacity(unit.len()),
        };
        cfg.set_from_normalized(catalogue, unit);
        cfg
    }

    /// Overwrites this configuration in place from a normalized vector, reusing the
    /// existing allocation. Per-candidate sweeps (the white-box rule check evaluates
    /// every candidate of every suggest call) use this so the loop performs no
    /// allocations; the result is identical to [`Configuration::from_normalized`].
    pub fn set_from_normalized(&mut self, catalogue: &KnobCatalogue, unit: &[f64]) {
        assert_eq!(unit.len(), catalogue.len());
        self.values.clear();
        self.values.extend(
            unit.iter()
                .zip(catalogue.knobs().iter())
                .map(|(u, k)| k.denormalize(*u)),
        );
    }

    /// The raw values in catalogue order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of knobs.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the configuration is empty (only for degenerate catalogues).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of a knob by name; `None` if the catalogue does not contain it.
    pub fn get(&self, catalogue: &KnobCatalogue, name: &str) -> Option<f64> {
        catalogue.index_of(name).map(|i| self.values[i])
    }

    /// Sets a knob by name (sanitized). Returns `false` when the knob is unknown.
    pub fn set(&mut self, catalogue: &KnobCatalogue, name: &str, value: f64) -> bool {
        match catalogue.index_of(name) {
            Some(i) => {
                self.values[i] = catalogue.knob(i).sanitize(value);
                true
            }
            None => false,
        }
    }

    /// Normalized `[0, 1]^m` representation of the configuration.
    pub fn normalized(&self, catalogue: &KnobCatalogue) -> Vec<f64> {
        self.values
            .iter()
            .zip(catalogue.knobs().iter())
            .map(|(v, k)| k.normalize(*v))
            .collect()
    }

    /// Euclidean distance to another configuration in normalized space — the metric used by
    /// subspace radii and the diagnostics plots (Figure 13).
    pub fn normalized_distance(&self, other: &Configuration, catalogue: &KnobCatalogue) -> f64 {
        let a = self.normalized(catalogue);
        let b = other.normalized(catalogue);
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reflect_catalogue() {
        let cat = KnobCatalogue::mysql57();
        let vendor = Configuration::vendor_default(&cat);
        let dba = Configuration::dba_default(&cat);
        assert_eq!(vendor.len(), 40);
        assert_eq!(
            vendor.get(&cat, "innodb_buffer_pool_size").unwrap(),
            128.0 * 1024.0 * 1024.0
        );
        assert_eq!(
            dba.get(&cat, "innodb_buffer_pool_size").unwrap(),
            13.0 * 1024.0 * 1024.0 * 1024.0
        );
        assert!(vendor.normalized_distance(&dba, &cat) > 0.5);
    }

    #[test]
    fn set_and_get_by_name() {
        let cat = KnobCatalogue::mysql57();
        let mut cfg = Configuration::vendor_default(&cat);
        assert!(cfg.set(&cat, "sort_buffer_size", 8.0 * 1024.0 * 1024.0));
        assert_eq!(
            cfg.get(&cat, "sort_buffer_size").unwrap(),
            8.0 * 1024.0 * 1024.0
        );
        assert!(!cfg.set(&cat, "not_a_knob", 1.0));
        assert_eq!(cfg.get(&cat, "not_a_knob"), None);
    }

    #[test]
    fn from_values_sanitizes_out_of_range_inputs() {
        let cat = KnobCatalogue::mysql57();
        let mut values = cat.default_values();
        let bp = cat.index_of("innodb_buffer_pool_size").unwrap();
        values[bp] = 1e18; // way above the max
        let cfg = Configuration::from_values(&cat, values);
        assert_eq!(cfg.values()[bp], 15.0 * 1024.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn normalized_roundtrip_is_close() {
        let cat = KnobCatalogue::mysql57();
        let dba = Configuration::dba_default(&cat);
        let unit = dba.normalized(&cat);
        assert!(unit.iter().all(|u| (0.0..=1.0).contains(u)));
        let back = Configuration::from_normalized(&cat, &unit);
        for (a, b) in dba.values().iter().zip(back.values().iter()) {
            let rel = (a - b).abs() / a.abs().max(1.0);
            assert!(rel < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    fn set_from_normalized_matches_from_normalized() {
        let cat = KnobCatalogue::mysql57();
        let unit_a: Vec<f64> = (0..cat.len())
            .map(|i| i as f64 / cat.len() as f64)
            .collect();
        let unit_b: Vec<f64> = (0..cat.len())
            .map(|i| 1.0 - i as f64 / cat.len() as f64)
            .collect();
        let mut scratch = Configuration::from_normalized(&cat, &unit_a);
        assert_eq!(scratch, Configuration::from_normalized(&cat, &unit_a));
        scratch.set_from_normalized(&cat, &unit_b);
        assert_eq!(scratch, Configuration::from_normalized(&cat, &unit_b));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let cat = KnobCatalogue::mysql57();
        let cfg = Configuration::dba_default(&cat);
        assert_eq!(cfg.normalized_distance(&cfg, &cat), 0.0);
    }
}
