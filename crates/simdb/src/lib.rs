//! # simdb — a simulated MySQL-like cloud DBMS
//!
//! The OnlineTune paper evaluates against RDS MySQL 5.7 running on an 8 vCPU / 16 GB cloud
//! instance. This crate is the substitute substrate: an analytical, noisy simulator of such
//! an instance that exposes exactly the interface a configuration tuner interacts with:
//!
//! 1. a **knob catalogue** of 40 dynamic configuration knobs ([`knobs`]) with vendor
//!    defaults and DBA defaults,
//! 2. **apply a configuration** without restart ([`instance::SimDatabase::apply_config`]),
//! 3. **run a workload for one tuning interval** and observe throughput / p99 latency,
//!    internal metrics and optimizer statistics
//!    ([`instance::SimDatabase::run_interval`]),
//! 4. **failure semantics** — memory overcommit hangs the instance, exactly the failure
//!    mode the paper reports for offline tuners (§1, Figure 1c).
//!
//! The performance model ([`perfmodel`]) is not a packet-level simulation; it is a
//! calibrated analytical model whose *response surface* has the properties every
//! MySQL-tuning paper relies on: diminishing returns of buffer-pool memory, per-connection
//! buffer overcommit, commit-durability trade-offs, spill-to-disk penalties for sorts /
//! joins / temp tables, a non-ordinal `thread_concurrency` knob, knob interactions, and
//! context (workload/data) dependent optima. Measurement noise shrinks with the square root
//! of the interval length, which is what makes very short tuning intervals unreliable
//! (paper §7.3.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fault;
pub mod hardware;
pub mod instance;
pub mod knobs;
pub mod metrics;
pub mod noise;
pub mod optimizer;
pub mod perfmodel;
pub mod workload;

pub use config::Configuration;
pub use fault::{FaultKind, FaultPlan};
pub use hardware::HardwareSpec;
pub use instance::{Evaluation, SimDatabase};
pub use knobs::{KnobCatalogue, KnobDef, KnobKind, KnobScale};
pub use metrics::{InternalMetrics, PerformanceOutcome};
pub use optimizer::OptimizerStats;
pub use workload::{QueryClass, WorkloadMix, WorkloadSpec};
