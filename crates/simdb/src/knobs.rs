//! The knob catalogue: 40 dynamic MySQL-5.7-style configuration knobs.
//!
//! The paper tunes "40 dynamic configuration knobs ... chosen based on their importance by
//! DBAs" without restarting the database. This module defines an equivalent catalogue with
//! the vendor (MySQL) default and the DBA default for each knob. Knob values are carried as
//! `f64` (bytes, counts, microseconds, enum indices, booleans as 0/1); [`KnobDef`] knows how
//! to normalize a value into `[0, 1]` (log-scaled for knobs that span orders of magnitude)
//! and how to clamp/round arbitrary values back into the legal domain.

use serde::{Deserialize, Serialize};

/// How a knob's numeric domain is interpreted.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum KnobKind {
    /// Integer-valued knob in `[min, max]`.
    Integer {
        /// Minimum legal value.
        min: f64,
        /// Maximum legal value.
        max: f64,
    },
    /// Real-valued knob in `[min, max]`.
    Float {
        /// Minimum legal value.
        min: f64,
        /// Maximum legal value.
        max: f64,
    },
    /// Enumerated knob; the value is the index into `choices`.
    Enum {
        /// Human-readable names of the choices.
        choices: Vec<&'static str>,
    },
    /// Boolean knob (0 = off, 1 = on).
    Bool,
}

/// Whether the knob is normalized on a linear or logarithmic axis.
///
/// Memory sizes spanning `128 KiB … 15 GiB` must be explored on a log axis or the surrogate
/// model wastes almost all of its resolution on the top decade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KnobScale {
    /// Normalize linearly between min and max.
    Linear,
    /// Normalize the logarithm of the value between the logs of min and max.
    Log,
}

/// Definition of a single configuration knob.
#[derive(Debug, Clone, Serialize)]
pub struct KnobDef {
    /// MySQL-style knob name.
    pub name: &'static str,
    /// Domain of the knob.
    pub kind: KnobKind,
    /// Normalization axis.
    pub scale: KnobScale,
    /// Vendor (MySQL) default value.
    pub default: f64,
    /// Value an experienced DBA would set on the reference 8 vCPU / 16 GB instance.
    pub dba_default: f64,
    /// One-line description of what the knob does in the simulator's performance model.
    pub description: &'static str,
}

impl KnobDef {
    /// Lower bound of the knob's numeric domain (0 for bool, 0 for enums).
    pub fn min(&self) -> f64 {
        match &self.kind {
            KnobKind::Integer { min, .. } | KnobKind::Float { min, .. } => *min,
            KnobKind::Enum { .. } | KnobKind::Bool => 0.0,
        }
    }

    /// Upper bound of the knob's numeric domain (1 for bool, `choices-1` for enums).
    pub fn max(&self) -> f64 {
        match &self.kind {
            KnobKind::Integer { max, .. } | KnobKind::Float { max, .. } => *max,
            KnobKind::Enum { choices } => (choices.len() - 1) as f64,
            KnobKind::Bool => 1.0,
        }
    }

    /// Whether the knob has a natural ordering a smooth surrogate can exploit.
    ///
    /// Enum and boolean knobs, and `innodb_thread_concurrency` (where 0 means "unlimited"),
    /// do not; the paper uses `thread_concurrency` as the example of a knob whose lack of
    /// ordering misleads the GP unless white-box rules intervene (§7.3.2).
    pub fn is_ordinal(&self) -> bool {
        match &self.kind {
            KnobKind::Enum { .. } | KnobKind::Bool => false,
            _ => self.name != "innodb_thread_concurrency",
        }
    }

    /// Clamps (and for integer/enum/bool knobs, rounds) a raw value into the legal domain.
    pub fn sanitize(&self, value: f64) -> f64 {
        let v = value.clamp(self.min(), self.max());
        match &self.kind {
            KnobKind::Float { .. } => v,
            _ => v.round(),
        }
    }

    /// Normalizes a legal value into `[0, 1]`.
    pub fn normalize(&self, value: f64) -> f64 {
        let v = value.clamp(self.min(), self.max());
        let (lo, hi) = (self.min(), self.max());
        if (hi - lo).abs() < 1e-12 {
            return 0.5;
        }
        match self.scale {
            KnobScale::Linear => (v - lo) / (hi - lo),
            KnobScale::Log => {
                let shift = if lo <= 0.0 { 1.0 - lo } else { 0.0 };
                ((v + shift).ln() - (lo + shift).ln()) / ((hi + shift).ln() - (lo + shift).ln())
            }
        }
    }

    /// Maps a `[0, 1]` value back into the knob's domain (inverse of [`KnobDef::normalize`]).
    pub fn denormalize(&self, unit: f64) -> f64 {
        let u = unit.clamp(0.0, 1.0);
        let (lo, hi) = (self.min(), self.max());
        let raw = match self.scale {
            KnobScale::Linear => lo + u * (hi - lo),
            KnobScale::Log => {
                let shift = if lo <= 0.0 { 1.0 - lo } else { 0.0 };
                ((lo + shift).ln() + u * ((hi + shift).ln() - (lo + shift).ln())).exp() - shift
            }
        };
        self.sanitize(raw)
    }
}

/// The full catalogue of tunable knobs, in a fixed order that configuration vectors follow.
#[derive(Debug, Clone)]
pub struct KnobCatalogue {
    knobs: Vec<KnobDef>,
}

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
const MIB: f64 = 1024.0 * 1024.0;
const KIB: f64 = 1024.0;

impl Default for KnobCatalogue {
    fn default() -> Self {
        Self::mysql57()
    }
}

impl KnobCatalogue {
    /// The 40-knob MySQL 5.7 catalogue used throughout the reproduction.
    pub fn mysql57() -> Self {
        use KnobKind::*;
        use KnobScale::*;
        let knobs = vec![
            KnobDef {
                name: "innodb_buffer_pool_size",
                kind: Integer {
                    min: 128.0 * MIB,
                    max: 15.0 * GIB,
                },
                scale: Log,
                default: 128.0 * MIB,
                dba_default: 13.0 * GIB,
                description: "Main data/index cache; dominates read IO avoidance",
            },
            KnobDef {
                name: "innodb_log_file_size",
                kind: Integer {
                    min: 48.0 * MIB,
                    max: 4.0 * GIB,
                },
                scale: Log,
                default: 48.0 * MIB,
                dba_default: 1.0 * GIB,
                description:
                    "Redo log size; small values force frequent checkpoint stalls under writes",
            },
            KnobDef {
                name: "innodb_log_buffer_size",
                kind: Integer {
                    min: 1.0 * MIB,
                    max: 256.0 * MIB,
                },
                scale: Log,
                default: 16.0 * MIB,
                dba_default: 64.0 * MIB,
                description:
                    "Redo log staging buffer; small values cause log waits for large transactions",
            },
            KnobDef {
                name: "innodb_flush_log_at_trx_commit",
                kind: Enum {
                    choices: vec!["0", "1", "2"],
                },
                scale: Linear,
                default: 1.0,
                dba_default: 1.0,
                description:
                    "Commit durability: 1 = fsync every commit (slow, safe), 0/2 = relaxed",
            },
            KnobDef {
                name: "innodb_flush_method",
                kind: Enum {
                    choices: vec!["fsync", "O_DIRECT", "O_DSYNC"],
                },
                scale: Linear,
                default: 0.0,
                dba_default: 1.0,
                description: "O_DIRECT avoids double buffering through the OS page cache",
            },
            KnobDef {
                name: "innodb_io_capacity",
                kind: Integer {
                    min: 100.0,
                    max: 20000.0,
                },
                scale: Log,
                default: 200.0,
                dba_default: 4000.0,
                description: "Background flush IOPS budget; too low lets dirty pages pile up",
            },
            KnobDef {
                name: "innodb_io_capacity_max",
                kind: Integer {
                    min: 200.0,
                    max: 40000.0,
                },
                scale: Log,
                default: 2000.0,
                dba_default: 8000.0,
                description: "Burst flush IOPS budget",
            },
            KnobDef {
                name: "innodb_thread_concurrency",
                kind: Integer {
                    min: 0.0,
                    max: 64.0,
                },
                scale: Linear,
                default: 0.0,
                dba_default: 0.0,
                description: "Max threads inside InnoDB; 0 means unlimited (non-ordinal!)",
            },
            KnobDef {
                name: "innodb_spin_wait_delay",
                kind: Integer {
                    min: 0.0,
                    max: 6000.0,
                },
                scale: Log,
                default: 6.0,
                dba_default: 6.0,
                description:
                    "Spin-loop delay between lock polls; extreme values waste CPU or add latency",
            },
            KnobDef {
                name: "innodb_sync_spin_loops",
                kind: Integer {
                    min: 0.0,
                    max: 1000.0,
                },
                scale: Log,
                default: 30.0,
                dba_default: 30.0,
                description: "Spin rounds before a thread sleeps on a mutex",
            },
            KnobDef {
                name: "innodb_read_io_threads",
                kind: Integer {
                    min: 1.0,
                    max: 16.0,
                },
                scale: Linear,
                default: 4.0,
                dba_default: 8.0,
                description: "Parallelism of background read IO",
            },
            KnobDef {
                name: "innodb_write_io_threads",
                kind: Integer {
                    min: 1.0,
                    max: 16.0,
                },
                scale: Linear,
                default: 4.0,
                dba_default: 8.0,
                description: "Parallelism of background write IO",
            },
            KnobDef {
                name: "innodb_purge_threads",
                kind: Integer {
                    min: 1.0,
                    max: 32.0,
                },
                scale: Linear,
                default: 4.0,
                dba_default: 4.0,
                description: "Undo purge parallelism; matters for update-heavy workloads",
            },
            KnobDef {
                name: "innodb_lru_scan_depth",
                kind: Integer {
                    min: 100.0,
                    max: 10000.0,
                },
                scale: Log,
                default: 1024.0,
                dba_default: 1024.0,
                description: "Free-page scan depth per buffer-pool instance",
            },
            KnobDef {
                name: "innodb_adaptive_hash_index",
                kind: Bool,
                scale: Linear,
                default: 1.0,
                dba_default: 1.0,
                description: "Hash index over hot B-tree pages; helps skewed point reads",
            },
            KnobDef {
                name: "innodb_change_buffer_max_size",
                kind: Integer {
                    min: 0.0,
                    max: 50.0,
                },
                scale: Linear,
                default: 25.0,
                dba_default: 25.0,
                description: "Fraction of the buffer pool reserved for the insert/change buffer",
            },
            KnobDef {
                name: "innodb_max_dirty_pages_pct",
                kind: Float {
                    min: 0.0,
                    max: 99.0,
                },
                scale: Linear,
                default: 75.0,
                dba_default: 75.0,
                description: "Dirty-page high-water mark before aggressive flushing",
            },
            KnobDef {
                name: "innodb_doublewrite",
                kind: Bool,
                scale: Linear,
                default: 1.0,
                dba_default: 1.0,
                description: "Torn-page protection; costs write bandwidth",
            },
            KnobDef {
                name: "innodb_adaptive_flushing",
                kind: Bool,
                scale: Linear,
                default: 1.0,
                dba_default: 1.0,
                description: "Adaptive redo-driven flushing",
            },
            KnobDef {
                name: "innodb_flush_neighbors",
                kind: Enum {
                    choices: vec!["0", "1", "2"],
                },
                scale: Linear,
                default: 1.0,
                dba_default: 0.0,
                description: "Flush adjacent dirty pages (useful on HDD, wasteful on SSD)",
            },
            KnobDef {
                name: "innodb_old_blocks_pct",
                kind: Integer {
                    min: 5.0,
                    max: 95.0,
                },
                scale: Linear,
                default: 37.0,
                dba_default: 37.0,
                description: "Fraction of the LRU list reserved for old blocks (scan resistance)",
            },
            KnobDef {
                name: "innodb_random_read_ahead",
                kind: Bool,
                scale: Linear,
                default: 0.0,
                dba_default: 0.0,
                description: "Random read-ahead; can pollute the buffer pool",
            },
            KnobDef {
                name: "innodb_read_ahead_threshold",
                kind: Integer {
                    min: 0.0,
                    max: 64.0,
                },
                scale: Linear,
                default: 56.0,
                dba_default: 56.0,
                description: "Sequential read-ahead trigger threshold",
            },
            KnobDef {
                name: "innodb_concurrency_tickets",
                kind: Integer {
                    min: 1.0,
                    max: 100000.0,
                },
                scale: Log,
                default: 5000.0,
                dba_default: 5000.0,
                description: "Rows a thread may traverse before re-entering the concurrency gate",
            },
            KnobDef {
                name: "sync_binlog",
                kind: Integer {
                    min: 0.0,
                    max: 1000.0,
                },
                scale: Log,
                default: 1.0,
                dba_default: 1.0,
                description: "Binlog fsync cadence; 1 = every commit",
            },
            KnobDef {
                name: "binlog_cache_size",
                kind: Integer {
                    min: 4.0 * KIB,
                    max: 64.0 * MIB,
                },
                scale: Log,
                default: 32.0 * KIB,
                dba_default: 1.0 * MIB,
                description: "Per-connection binlog staging buffer",
            },
            KnobDef {
                name: "sort_buffer_size",
                kind: Integer {
                    min: 32.0 * KIB,
                    max: 256.0 * MIB,
                },
                scale: Log,
                default: 256.0 * KIB,
                dba_default: 2.0 * MIB,
                description: "Per-connection sort area; small values spill sorts to disk",
            },
            KnobDef {
                name: "join_buffer_size",
                kind: Integer {
                    min: 128.0 * KIB,
                    max: 256.0 * MIB,
                },
                scale: Log,
                default: 256.0 * KIB,
                dba_default: 2.0 * MIB,
                description: "Per-connection buffer for index-less joins",
            },
            KnobDef {
                name: "read_buffer_size",
                kind: Integer {
                    min: 8.0 * KIB,
                    max: 64.0 * MIB,
                },
                scale: Log,
                default: 128.0 * KIB,
                dba_default: 1.0 * MIB,
                description: "Per-connection sequential scan buffer",
            },
            KnobDef {
                name: "read_rnd_buffer_size",
                kind: Integer {
                    min: 8.0 * KIB,
                    max: 64.0 * MIB,
                },
                scale: Log,
                default: 256.0 * KIB,
                dba_default: 1.0 * MIB,
                description: "Per-connection buffer for sorted reads",
            },
            KnobDef {
                name: "tmp_table_size",
                kind: Integer {
                    min: 1.0 * MIB,
                    max: 1.0 * GIB,
                },
                scale: Log,
                default: 16.0 * MIB,
                dba_default: 64.0 * MIB,
                description: "In-memory temp table limit before spilling to disk",
            },
            KnobDef {
                name: "max_heap_table_size",
                kind: Integer {
                    min: 1.0 * MIB,
                    max: 1.0 * GIB,
                },
                scale: Log,
                default: 16.0 * MIB,
                dba_default: 64.0 * MIB,
                description: "MEMORY engine table limit; min(tmp_table_size, this) governs spills",
            },
            KnobDef {
                name: "table_open_cache",
                kind: Integer {
                    min: 400.0,
                    max: 10000.0,
                },
                scale: Log,
                default: 2000.0,
                dba_default: 4000.0,
                description: "Cached table descriptors",
            },
            KnobDef {
                name: "table_open_cache_instances",
                kind: Integer {
                    min: 1.0,
                    max: 64.0,
                },
                scale: Linear,
                default: 16.0,
                dba_default: 16.0,
                description: "Partitions of the table cache (mutex contention)",
            },
            KnobDef {
                name: "thread_cache_size",
                kind: Integer {
                    min: 0.0,
                    max: 1000.0,
                },
                scale: Log,
                default: 9.0,
                dba_default: 100.0,
                description: "Cached connection handler threads",
            },
            KnobDef {
                name: "max_connections",
                kind: Integer {
                    min: 100.0,
                    max: 10000.0,
                },
                scale: Log,
                default: 151.0,
                dba_default: 2000.0,
                description: "Connection limit; combined with per-connection buffers bounds memory",
            },
            KnobDef {
                name: "query_cache_size",
                kind: Integer {
                    min: 0.0,
                    max: 256.0 * MIB,
                },
                scale: Log,
                default: 1.0 * MIB,
                dba_default: 0.0,
                description: "Query result cache (5.7); contended under writes",
            },
            KnobDef {
                name: "query_cache_type",
                kind: Enum {
                    choices: vec!["OFF", "ON", "DEMAND"],
                },
                scale: Linear,
                default: 0.0,
                dba_default: 0.0,
                description: "Whether the query cache is consulted",
            },
            KnobDef {
                name: "key_buffer_size",
                kind: Integer {
                    min: 8.0 * MIB,
                    max: 1.0 * GIB,
                },
                scale: Log,
                default: 8.0 * MIB,
                dba_default: 32.0 * MIB,
                description: "MyISAM index cache (small role for InnoDB workloads)",
            },
            KnobDef {
                name: "bulk_insert_buffer_size",
                kind: Integer {
                    min: 0.0,
                    max: 256.0 * MIB,
                },
                scale: Log,
                default: 8.0 * MIB,
                dba_default: 8.0 * MIB,
                description: "Tree cache for bulk MyISAM inserts",
            },
        ];
        KnobCatalogue { knobs }
    }

    /// Number of knobs in the catalogue.
    pub fn len(&self) -> usize {
        self.knobs.len()
    }

    /// Whether the catalogue is empty (never true for the built-in catalogue).
    pub fn is_empty(&self) -> bool {
        self.knobs.is_empty()
    }

    /// All knob definitions in vector order.
    pub fn knobs(&self) -> &[KnobDef] {
        &self.knobs
    }

    /// Knob definition by index.
    pub fn knob(&self, index: usize) -> &KnobDef {
        &self.knobs[index]
    }

    /// Finds the index of a knob by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.knobs.iter().position(|k| k.name == name)
    }

    /// A reduced catalogue containing only the named knobs (used by the YCSB case study,
    /// which tunes 5 knobs). Panics if a name is unknown.
    pub fn subset(&self, names: &[&str]) -> KnobCatalogue {
        let knobs = names
            .iter()
            .map(|n| {
                self.knobs
                    .iter()
                    .find(|k| k.name == *n)
                    .unwrap_or_else(|| panic!("unknown knob {n}"))
                    .clone()
            })
            .collect();
        KnobCatalogue { knobs }
    }

    /// The vendor-default configuration vector.
    pub fn default_values(&self) -> Vec<f64> {
        self.knobs.iter().map(|k| k.default).collect()
    }

    /// The DBA-default configuration vector.
    pub fn dba_default_values(&self) -> Vec<f64> {
        self.knobs.iter().map(|k| k.dba_default).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_forty_knobs_with_unique_names() {
        let cat = KnobCatalogue::mysql57();
        assert_eq!(cat.len(), 40);
        let mut names: Vec<&str> = cat.knobs().iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 40, "duplicate knob names");
    }

    #[test]
    fn defaults_are_within_bounds() {
        for k in KnobCatalogue::mysql57().knobs() {
            assert!(k.default >= k.min() && k.default <= k.max(), "{}", k.name);
            assert!(
                k.dba_default >= k.min() && k.dba_default <= k.max(),
                "{}",
                k.name
            );
        }
    }

    #[test]
    fn normalize_denormalize_roundtrip_at_bounds_and_defaults() {
        for k in KnobCatalogue::mysql57().knobs() {
            for v in [k.min(), k.max(), k.default, k.dba_default] {
                let n = k.normalize(v);
                assert!((0.0..=1.0).contains(&n), "{} -> {n}", k.name);
                let back = k.denormalize(n);
                // Round-tripping must stay within 1% of the span (integer rounding allowed).
                let span = (k.max() - k.min()).max(1.0);
                assert!(
                    (back - v).abs() <= span * 0.01 + 1.0,
                    "{}: {v} -> {n} -> {back}",
                    k.name
                );
            }
        }
    }

    #[test]
    fn log_scaled_knob_gives_resolution_to_small_values() {
        let cat = KnobCatalogue::mysql57();
        let bp = cat.knob(cat.index_of("innodb_buffer_pool_size").unwrap());
        // 1 GiB is far less than half-way linearly, but well above 0.4 on the log axis.
        let n = bp.normalize(1.0 * 1024.0 * 1024.0 * 1024.0);
        assert!(
            n > 0.35,
            "log normalization should spread the low decades, got {n}"
        );
    }

    #[test]
    fn sanitize_clamps_and_rounds() {
        let cat = KnobCatalogue::mysql57();
        let tc = cat.knob(cat.index_of("innodb_thread_concurrency").unwrap());
        assert_eq!(tc.sanitize(-5.0), 0.0);
        assert_eq!(tc.sanitize(3.7), 4.0);
        assert_eq!(tc.sanitize(1e9), 64.0);
        let dirty = cat.knob(cat.index_of("innodb_max_dirty_pages_pct").unwrap());
        assert!((dirty.sanitize(42.42) - 42.42).abs() < 1e-12); // float knob keeps fractions
    }

    #[test]
    fn thread_concurrency_and_enums_are_not_ordinal() {
        let cat = KnobCatalogue::mysql57();
        assert!(!cat
            .knob(cat.index_of("innodb_thread_concurrency").unwrap())
            .is_ordinal());
        assert!(!cat
            .knob(cat.index_of("innodb_flush_log_at_trx_commit").unwrap())
            .is_ordinal());
        assert!(!cat
            .knob(cat.index_of("innodb_doublewrite").unwrap())
            .is_ordinal());
        assert!(cat
            .knob(cat.index_of("innodb_buffer_pool_size").unwrap())
            .is_ordinal());
    }

    #[test]
    fn subset_preserves_order_and_panics_on_unknown() {
        let cat = KnobCatalogue::mysql57();
        let sub = cat.subset(&["sort_buffer_size", "innodb_buffer_pool_size"]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.knob(0).name, "sort_buffer_size");
        assert_eq!(sub.knob(1).name, "innodb_buffer_pool_size");
        let result = std::panic::catch_unwind(|| cat.subset(&["no_such_knob"]));
        assert!(result.is_err());
    }

    #[test]
    fn index_of_finds_every_knob() {
        let cat = KnobCatalogue::mysql57();
        for (i, k) in cat.knobs().iter().enumerate() {
            assert_eq!(cat.index_of(k.name), Some(i));
        }
        assert_eq!(cat.index_of("bogus"), None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_denormalize_always_legal(u in 0.0f64..1.0, idx in 0usize..40) {
                let cat = KnobCatalogue::mysql57();
                let k = cat.knob(idx);
                let v = k.denormalize(u);
                prop_assert!(v >= k.min() - 1e-9 && v <= k.max() + 1e-9, "{}: {} out of range", k.name, v);
            }

            #[test]
            fn prop_normalize_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0, idx in 0usize..40) {
                let cat = KnobCatalogue::mysql57();
                let k = cat.knob(idx);
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                let va = k.min() + lo * (k.max() - k.min());
                let vb = k.min() + hi * (k.max() - k.min());
                prop_assert!(k.normalize(va) <= k.normalize(vb) + 1e-9);
            }
        }
    }
}
