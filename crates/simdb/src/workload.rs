//! Workload descriptors consumed by the performance model.
//!
//! A [`WorkloadSpec`] is the simulator-facing summary of "what is running against the
//! database during one tuning interval": the query-class mix, arrival rate, client count,
//! data volume and access skew. The `workloads` crate builds these specs (and the matching
//! SQL text used for featurization) for TPC-C, Twitter, JOB, YCSB and the real-world trace,
//! including their dynamic variants.

use serde::{Deserialize, Serialize};

/// Coarse classes of queries the performance model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryClass {
    /// Primary-key point lookups.
    PointSelect,
    /// Short index range scans.
    RangeSelect,
    /// Multi-table joins (OLAP style).
    Join,
    /// Aggregations with grouping / sorting.
    Aggregate,
    /// Single-row inserts.
    Insert,
    /// Indexed updates.
    Update,
    /// Deletes.
    Delete,
}

impl QueryClass {
    /// All classes, in the order used by [`WorkloadMix`].
    pub const ALL: [QueryClass; 7] = [
        QueryClass::PointSelect,
        QueryClass::RangeSelect,
        QueryClass::Join,
        QueryClass::Aggregate,
        QueryClass::Insert,
        QueryClass::Update,
        QueryClass::Delete,
    ];

    /// Whether the class modifies data.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            QueryClass::Insert | QueryClass::Update | QueryClass::Delete
        )
    }

    /// Whether the class is an analytical (scan/join/sort heavy) query.
    pub fn is_analytical(self) -> bool {
        matches!(self, QueryClass::Join | QueryClass::Aggregate)
    }
}

/// Relative frequency of each query class; always normalized to sum to 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    weights: [f64; 7],
}

impl WorkloadMix {
    /// Builds a mix from raw (non-negative) weights; they are normalized internally.
    /// An all-zero input yields a uniform mix.
    pub fn new(weights: [f64; 7]) -> Self {
        let mut w = weights.map(|v| v.max(0.0));
        let total: f64 = w.iter().sum();
        if total <= 0.0 {
            w = [1.0 / 7.0; 7];
        } else {
            w.iter_mut().for_each(|v| *v /= total);
        }
        WorkloadMix { weights: w }
    }

    /// Weight of one query class.
    pub fn weight(&self, class: QueryClass) -> f64 {
        let idx = QueryClass::ALL.iter().position(|c| *c == class).unwrap();
        self.weights[idx]
    }

    /// All weights in [`QueryClass::ALL`] order.
    pub fn weights(&self) -> &[f64; 7] {
        &self.weights
    }

    /// Fraction of queries that modify data.
    pub fn write_fraction(&self) -> f64 {
        QueryClass::ALL
            .iter()
            .zip(self.weights.iter())
            .filter(|(c, _)| c.is_write())
            .map(|(_, w)| w)
            .sum()
    }

    /// Fraction of queries that only read data.
    pub fn read_fraction(&self) -> f64 {
        1.0 - self.write_fraction()
    }

    /// Fraction of analytical (join/aggregate) queries.
    pub fn analytical_fraction(&self) -> f64 {
        QueryClass::ALL
            .iter()
            .zip(self.weights.iter())
            .filter(|(c, _)| c.is_analytical())
            .map(|(_, w)| w)
            .sum()
    }

    /// Linear interpolation between two mixes (`t` in `[0, 1]`), used by the dynamic
    /// query-composition schedules.
    pub fn blend(&self, other: &WorkloadMix, t: f64) -> WorkloadMix {
        let t = t.clamp(0.0, 1.0);
        let mut w = [0.0; 7];
        for (i, wi) in w.iter_mut().enumerate() {
            *wi = (1.0 - t) * self.weights[i] + t * other.weights[i];
        }
        WorkloadMix::new(w)
    }
}

/// Everything the performance model needs to know about one tuning interval's workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable name (e.g. "tpcc", "twitter", "job", "ycsb").
    pub name: String,
    /// Query-class mix.
    pub mix: WorkloadMix,
    /// Offered load in queries per second; `None` means a closed loop that always has work
    /// queued (the paper uses unlimited arrival rates for the OLTP benchmarks).
    pub arrival_rate_qps: Option<f64>,
    /// Number of concurrently connected clients issuing queries.
    pub clients: usize,
    /// Logical data size in GiB (grows over time for write-heavy workloads).
    pub data_size_gib: f64,
    /// Access skew in `[0, 1]`: 0 = uniform, 1 = extremely skewed (tiny hot set).
    pub skew: f64,
    /// Average number of rows touched by a read query (drives scan cost).
    pub avg_rows_per_read: f64,
    /// Average number of tables participating in a join query.
    pub avg_join_tables: f64,
    /// Fraction of rows surviving predicates (selectivity) for scans.
    pub avg_selectivity: f64,
    /// Fraction of queries that can use an index.
    pub index_coverage: f64,
}

impl WorkloadSpec {
    /// A sensible OLTP default used by unit tests (uniform point-read/write mix, 10 GiB).
    pub fn synthetic_oltp() -> Self {
        WorkloadSpec {
            name: "synthetic-oltp".to_string(),
            mix: WorkloadMix::new([0.55, 0.1, 0.0, 0.0, 0.15, 0.15, 0.05]),
            arrival_rate_qps: None,
            clients: 32,
            data_size_gib: 10.0,
            skew: 0.5,
            avg_rows_per_read: 4.0,
            avg_join_tables: 1.0,
            avg_selectivity: 0.05,
            index_coverage: 0.95,
        }
    }

    /// Fraction of the data that is "hot" given the skew: heavily skewed workloads touch a
    /// small fraction of the data most of the time, so a smaller buffer pool suffices.
    pub fn hot_fraction(&self) -> f64 {
        // skew 0 → 1.0 (whole data set hot); skew 1 → 0.05.
        (1.0 - 0.95 * self.skew.clamp(0.0, 1.0)).max(0.05)
    }

    /// Size of the hot set in bytes.
    pub fn hot_bytes(&self) -> f64 {
        self.data_size_gib * 1024.0 * 1024.0 * 1024.0 * self.hot_fraction()
    }

    /// Whether the workload is predominantly analytical.
    pub fn is_analytical(&self) -> bool {
        self.mix.analytical_fraction() > 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_normalizes_weights() {
        let mix = WorkloadMix::new([2.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        assert!((mix.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((mix.weight(QueryClass::PointSelect) - 0.5).abs() < 1e-12);
        assert!((mix.write_fraction() - 0.5).abs() < 1e-12);
        assert!((mix.read_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_mix_becomes_uniform() {
        let mix = WorkloadMix::new([0.0; 7]);
        assert!((mix.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for c in QueryClass::ALL {
            assert!((mix.weight(c) - 1.0 / 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_weights_are_clamped() {
        let mix = WorkloadMix::new([-5.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(mix.weight(QueryClass::PointSelect), 0.0);
        assert_eq!(mix.weight(QueryClass::RangeSelect), 1.0);
    }

    #[test]
    fn blend_interpolates() {
        let oltp = WorkloadMix::new([1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let olap = WorkloadMix::new([0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        let mid = oltp.blend(&olap, 0.5);
        assert!((mid.weight(QueryClass::PointSelect) - 0.5).abs() < 1e-12);
        assert!((mid.weight(QueryClass::Join) - 0.5).abs() < 1e-12);
        let clamped = oltp.blend(&olap, 2.0);
        assert!((clamped.weight(QueryClass::Join) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn query_class_properties() {
        assert!(QueryClass::Insert.is_write());
        assert!(!QueryClass::PointSelect.is_write());
        assert!(QueryClass::Join.is_analytical());
        assert!(!QueryClass::Update.is_analytical());
    }

    #[test]
    fn hot_fraction_shrinks_with_skew() {
        let mut spec = WorkloadSpec::synthetic_oltp();
        spec.skew = 0.0;
        let uniform = spec.hot_fraction();
        spec.skew = 1.0;
        let skewed = spec.hot_fraction();
        assert!(uniform > skewed);
        assert!(skewed >= 0.05);
        assert!(uniform <= 1.0);
    }

    #[test]
    fn analytical_detection() {
        let mut spec = WorkloadSpec::synthetic_oltp();
        assert!(!spec.is_analytical());
        spec.mix = WorkloadMix::new([0.0, 0.0, 0.7, 0.3, 0.0, 0.0, 0.0]);
        assert!(spec.is_analytical());
    }
}
