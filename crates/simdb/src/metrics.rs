//! Internal metrics and the per-interval performance outcome.

use serde::{Deserialize, Serialize};

/// A snapshot of DBMS internal metrics for one tuning interval.
///
/// These play the role of MySQL's `SHOW GLOBAL STATUS` counters: CDBTune/DDPG consumes them
/// as its state vector, QTune predicts them from the workload embedding, and MysqlTuner's
/// heuristic rules read them to produce recommendations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InternalMetrics {
    /// Buffer-pool hit ratio in `[0, 1]`.
    pub buffer_pool_hit_ratio: f64,
    /// Fraction of buffer-pool pages that are dirty.
    pub dirty_page_ratio: f64,
    /// Logical reads per second.
    pub reads_per_sec: f64,
    /// Row modifications per second.
    pub writes_per_sec: f64,
    /// Redo log waits per second (log buffer too small).
    pub log_waits_per_sec: f64,
    /// Fraction of sorts that spilled to disk.
    pub sort_merge_spill_ratio: f64,
    /// Fraction of temporary tables created on disk.
    pub tmp_disk_table_ratio: f64,
    /// Fraction of joins executed without an index.
    pub joins_without_index_ratio: f64,
    /// Average number of threads running concurrently.
    pub threads_running: f64,
    /// Row-lock waits per second.
    pub lock_waits_per_sec: f64,
    /// Checkpoint-stall time fraction of the interval.
    pub checkpoint_stall_ratio: f64,
    /// Fraction of the physical memory committed by the DBMS.
    pub memory_pressure: f64,
    /// Disk read IOPS consumed.
    pub disk_reads_per_sec: f64,
    /// Disk write IOPS consumed.
    pub disk_writes_per_sec: f64,
    /// CPU utilization in `[0, 1]`.
    pub cpu_utilization: f64,
    /// Number of connection threads created during the interval.
    pub threads_created: f64,
}

impl InternalMetrics {
    /// Names of the metric dimensions, matching [`InternalMetrics::to_vec`].
    pub const NAMES: [&'static str; 16] = [
        "buffer_pool_hit_ratio",
        "dirty_page_ratio",
        "reads_per_sec",
        "writes_per_sec",
        "log_waits_per_sec",
        "sort_merge_spill_ratio",
        "tmp_disk_table_ratio",
        "joins_without_index_ratio",
        "threads_running",
        "lock_waits_per_sec",
        "checkpoint_stall_ratio",
        "memory_pressure",
        "disk_reads_per_sec",
        "disk_writes_per_sec",
        "cpu_utilization",
        "threads_created",
    ];

    /// Flattens the metrics into a vector (the DDPG / QTune state representation).
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.buffer_pool_hit_ratio,
            self.dirty_page_ratio,
            self.reads_per_sec,
            self.writes_per_sec,
            self.log_waits_per_sec,
            self.sort_merge_spill_ratio,
            self.tmp_disk_table_ratio,
            self.joins_without_index_ratio,
            self.threads_running,
            self.lock_waits_per_sec,
            self.checkpoint_stall_ratio,
            self.memory_pressure,
            self.disk_reads_per_sec,
            self.disk_writes_per_sec,
            self.cpu_utilization,
            self.threads_created,
        ]
    }

    /// A neutral all-zero metrics snapshot (used when the instance is hung).
    pub fn zeroed() -> Self {
        InternalMetrics {
            buffer_pool_hit_ratio: 0.0,
            dirty_page_ratio: 0.0,
            reads_per_sec: 0.0,
            writes_per_sec: 0.0,
            log_waits_per_sec: 0.0,
            sort_merge_spill_ratio: 0.0,
            tmp_disk_table_ratio: 0.0,
            joins_without_index_ratio: 0.0,
            threads_running: 0.0,
            lock_waits_per_sec: 0.0,
            checkpoint_stall_ratio: 0.0,
            memory_pressure: 0.0,
            disk_reads_per_sec: 0.0,
            disk_writes_per_sec: 0.0,
            cpu_utilization: 0.0,
            threads_created: 0.0,
        }
    }
}

/// Headline performance of one tuning interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerformanceOutcome {
    /// Committed transactions (or completed queries) per second.
    pub throughput_tps: f64,
    /// Average query/transaction latency in milliseconds.
    pub latency_avg_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub latency_p99_ms: f64,
    /// Whether the instance failed (hung) during the interval.
    pub failed: bool,
}

impl PerformanceOutcome {
    /// Outcome representing a hung instance: zero throughput, latency pinned at the cap.
    pub fn failure(latency_cap_ms: f64) -> Self {
        PerformanceOutcome {
            throughput_tps: 0.0,
            latency_avg_ms: latency_cap_ms,
            latency_p99_ms: latency_cap_ms,
            failed: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_vector_matches_names() {
        let m = InternalMetrics::zeroed();
        assert_eq!(m.to_vec().len(), InternalMetrics::NAMES.len());
    }

    #[test]
    fn failure_outcome_is_marked_failed() {
        let f = PerformanceOutcome::failure(200_000.0);
        assert!(f.failed);
        assert_eq!(f.throughput_tps, 0.0);
        assert_eq!(f.latency_p99_ms, 200_000.0);
    }
}
