//! Candidate selection within the safety set (§6.3).
//!
//! With probability `1 − ε` the tuner exploits/localizes by picking the safe candidate with
//! the maximal GP-UCB value (Eq. 4); with probability `ε` it explicitly tries to *expand*
//! the safety set by picking the safe candidate on the boundary of the subspace with the
//! largest predictive uncertainty.

use crate::safety::CandidateAssessment;
use crate::subspace::Subspace;
use rand::Rng;

/// Why a particular candidate was selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionReason {
    /// The candidate maximized the UCB acquisition over the safety set.
    MaxUcb,
    /// The candidate was the most uncertain safe point on the subspace boundary.
    BoundaryExploration,
    /// No safe candidate existed; the subspace centre (best known configuration) was reused.
    FallbackToCenter,
}

/// The outcome of candidate selection.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Index into the candidate list (0 is always the subspace centre).
    pub index: usize,
    /// The reason the candidate was chosen.
    pub reason: SelectionReason,
}

/// Selects a configuration index from the assessed candidates.
///
/// `assessments` must be aligned with `candidates`. Only candidates with
/// `black_safe && white_safe[i]` are eligible; when none is eligible the centre (index 0) is
/// returned with [`SelectionReason::FallbackToCenter`].
pub fn select_candidate<R: Rng>(
    candidates: &[Vec<f64>],
    assessments: &[CandidateAssessment],
    white_safe: &[bool],
    subspace: &Subspace,
    epsilon: f64,
    rng: &mut R,
) -> Selection {
    debug_assert_eq!(candidates.len(), assessments.len());
    debug_assert_eq!(candidates.len(), white_safe.len());

    let safe_indices: Vec<usize> = assessments
        .iter()
        .enumerate()
        .filter(|(i, a)| a.black_safe && white_safe[*i])
        .map(|(i, _)| i)
        .collect();

    if safe_indices.is_empty() {
        return Selection {
            index: 0,
            reason: SelectionReason::FallbackToCenter,
        };
    }

    let explore = rng.gen_range(0.0..1.0) < epsilon.clamp(0.0, 1.0);
    if explore {
        // Most uncertain safe candidate on the boundary of the subspace.
        let boundary_best = safe_indices
            .iter()
            .copied()
            .filter(|&i| subspace.is_boundary(&candidates[i]))
            .max_by(|&a, &b| {
                let sa = assessments[a].posterior.as_ref().map_or(0.0, |p| p.std_dev);
                let sb = assessments[b].posterior.as_ref().map_or(0.0, |p| p.std_dev);
                sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
            });
        if let Some(index) = boundary_best {
            return Selection {
                index,
                reason: SelectionReason::BoundaryExploration,
            };
        }
        // No safe boundary point: fall through to UCB.
    }

    let best = safe_indices
        .into_iter()
        .max_by(|&a, &b| {
            assessments[a]
                .ucb
                .partial_cmp(&assessments[b].ucb)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("safe set is non-empty");
    Selection {
        index: best,
        reason: SelectionReason::MaxUcb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subspace::{Subspace, SubspaceOptions};
    use gp::regression::Posterior;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assessment(index: usize, mean: f64, std: f64, safe: bool) -> CandidateAssessment {
        CandidateAssessment {
            index,
            posterior: Some(Posterior { mean, std_dev: std }),
            lcb: mean - 2.0 * std,
            ucb: mean + 2.0 * std,
            black_safe: safe,
        }
    }

    fn subspace() -> Subspace {
        Subspace::new(vec![0.5, 0.5], SubspaceOptions::default())
    }

    #[test]
    fn picks_the_maximum_ucb_safe_candidate_when_exploiting() {
        let candidates = vec![vec![0.5, 0.5], vec![0.52, 0.5], vec![0.48, 0.5]];
        let assessments = vec![
            assessment(0, 1.0, 0.1, true),
            assessment(1, 2.0, 0.1, true),
            assessment(2, 3.0, 0.1, false), // best mean but unsafe
        ];
        let white = vec![true, true, true];
        let mut rng = StdRng::seed_from_u64(0);
        let sel = select_candidate(
            &candidates,
            &assessments,
            &white,
            &subspace(),
            0.0,
            &mut rng,
        );
        assert_eq!(sel.index, 1);
        assert_eq!(sel.reason, SelectionReason::MaxUcb);
    }

    #[test]
    fn white_box_veto_excludes_candidates() {
        let candidates = vec![vec![0.5, 0.5], vec![0.52, 0.5]];
        let assessments = vec![assessment(0, 1.0, 0.1, true), assessment(1, 5.0, 0.1, true)];
        let white = vec![true, false];
        let mut rng = StdRng::seed_from_u64(0);
        let sel = select_candidate(
            &candidates,
            &assessments,
            &white,
            &subspace(),
            0.0,
            &mut rng,
        );
        assert_eq!(sel.index, 0);
    }

    #[test]
    fn falls_back_to_center_when_no_safe_candidate() {
        let candidates = vec![vec![0.5, 0.5], vec![0.9, 0.9]];
        let assessments = vec![
            assessment(0, 1.0, 0.1, false),
            assessment(1, 2.0, 0.1, false),
        ];
        let white = vec![true, true];
        let mut rng = StdRng::seed_from_u64(0);
        let sel = select_candidate(
            &candidates,
            &assessments,
            &white,
            &subspace(),
            0.5,
            &mut rng,
        );
        assert_eq!(sel.index, 0);
        assert_eq!(sel.reason, SelectionReason::FallbackToCenter);
    }

    #[test]
    fn exploration_prefers_uncertain_boundary_points() {
        let s = subspace();
        let r = s.radius().unwrap();
        // One interior candidate, two boundary candidates with different uncertainty.
        let candidates = vec![
            vec![0.5, 0.5],
            vec![0.5 + r * 0.95, 0.5],
            vec![0.5 - r * 0.95, 0.5],
        ];
        let assessments = vec![
            assessment(0, 10.0, 0.01, true),
            assessment(1, 1.0, 0.5, true),
            assessment(2, 1.0, 2.0, true),
        ];
        let white = vec![true, true, true];
        let mut rng = StdRng::seed_from_u64(1);
        // epsilon = 1.0 forces the exploration branch.
        let sel = select_candidate(&candidates, &assessments, &white, &s, 1.0, &mut rng);
        assert_eq!(sel.index, 2);
        assert_eq!(sel.reason, SelectionReason::BoundaryExploration);
    }

    #[test]
    fn exploration_without_boundary_candidates_falls_back_to_ucb() {
        let s = subspace();
        let candidates = vec![vec![0.5, 0.5], vec![0.51, 0.5]];
        let assessments = vec![assessment(0, 1.0, 0.1, true), assessment(1, 2.0, 0.1, true)];
        let white = vec![true, true];
        let mut rng = StdRng::seed_from_u64(2);
        let sel = select_candidate(&candidates, &assessments, &white, &s, 1.0, &mut rng);
        assert_eq!(sel.index, 1);
        assert_eq!(sel.reason, SelectionReason::MaxUcb);
    }
}
