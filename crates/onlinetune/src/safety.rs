//! Black-box safety assessment (§6.2.1).
//!
//! A candidate configuration is *black-box safe* when the lower confidence bound of the
//! selected contextual GP, evaluated at the candidate under the current context, clears the
//! safety threshold `τ` (the default configuration's performance). Before the model has
//! seen enough observations to produce meaningful bounds, the assessment falls back to a
//! proximity criterion: only candidates close to a configuration already known to be safe
//! are admitted — this is the paper's "start from configurations similar to those known to
//! be safe".

use gp::acquisition::{lower_confidence_bound, upper_confidence_bound};
use gp::contextual::ContextualGp;
use gp::regression::Posterior;

/// Assessment of one candidate configuration.
#[derive(Debug, Clone)]
pub struct CandidateAssessment {
    /// Index of the candidate in the candidate list it was built from.
    pub index: usize,
    /// GP posterior (if the model could produce one).
    pub posterior: Option<Posterior>,
    /// Lower confidence bound (worst plausible performance).
    pub lcb: f64,
    /// Upper confidence bound (optimistic performance, the UCB acquisition value).
    pub ucb: f64,
    /// Whether the candidate passed the black-box safety check.
    pub black_safe: bool,
}

/// Options of the black-box safety assessment.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct SafetyOptions {
    /// Minimum observations the model must hold before its confidence bounds are trusted.
    pub min_observations: usize,
    /// Proximity radius (normalized space) used in the cold-start fallback.
    pub cold_start_radius: f64,
    /// Relative slack on the safety threshold: a candidate is admitted when its lower bound
    /// clears `τ − margin·|τ|`. The measured default performance itself fluctuates by the
    /// measurement noise, so a small slack keeps already-observed safe configurations from
    /// being ejected from the safety set.
    pub threshold_margin: f64,
}

impl Default for SafetyOptions {
    fn default() -> Self {
        SafetyOptions {
            min_observations: 3,
            cold_start_radius: 0.08,
            threshold_margin: 0.03,
        }
    }
}

/// Assesses every candidate under the given context.
///
/// * `threshold` — the safety threshold `τ` in the same units as the model's targets.
/// * `beta` — confidence-bound multiplier (from [`gp::acquisition::ucb_beta`]).
/// * `known_safe` — configurations already known to be safe (normalized); used only in the
///   cold-start fallback.
///
/// The whole candidate sweep is **one batched posterior call**
/// ([`ContextualGp::predict_batch_with_scratch`]): one cross-kernel matrix with a shared
/// context column, one multi-RHS triangular solve, no per-candidate allocation. The
/// resulting assessments are bit-identical to evaluating each candidate through the
/// scalar [`ContextualGp::predict`] (the batched path's contract); a batch-level failure
/// (e.g. a malformed candidate) recovers through the scalar per-candidate loop so
/// well-formed candidates are still assessed exactly as before.
pub fn assess_candidates(
    model: &ContextualGp,
    context: &[f64],
    candidates: &[Vec<f64>],
    threshold: f64,
    beta: f64,
    known_safe: &[Vec<f64>],
    options: &SafetyOptions,
) -> Vec<CandidateAssessment> {
    let mut scratch = Vec::new();
    assess_candidates_with_scratch(
        model,
        context,
        candidates,
        threshold,
        beta,
        known_safe,
        options,
        &mut scratch,
    )
}

/// [`assess_candidates`] with a caller-owned scratch buffer for the joint query
/// vectors, so a per-iteration suggest loop allocates nothing once warmed up.
#[allow(clippy::too_many_arguments)]
pub fn assess_candidates_with_scratch(
    model: &ContextualGp,
    context: &[f64],
    candidates: &[Vec<f64>],
    threshold: f64,
    beta: f64,
    known_safe: &[Vec<f64>],
    options: &SafetyOptions,
    scratch: &mut Vec<Vec<f64>>,
) -> Vec<CandidateAssessment> {
    let assessments = assess_candidates_inner(
        model, context, candidates, threshold, beta, known_safe, options, scratch,
    );
    // Observability only: counts flow into the model's telemetry sink (a no-op branch
    // when none is installed) and never back into the assessment itself.
    let t = model.telemetry();
    if t.is_enabled() {
        let rejected = assessments.iter().filter(|a| !a.black_safe).count();
        t.add(telemetry::CounterId::BlackboxRejections, rejected as u64);
        if rejected == assessments.len() && !assessments.is_empty() {
            t.event(
                telemetry::EventKind::SafetyRejection,
                "blackbox",
                &format!("all {rejected} candidates rejected"),
            );
        }
    }
    assessments
}

/// The assessment proper, free of instrumentation.
#[allow(clippy::too_many_arguments)]
fn assess_candidates_inner(
    model: &ContextualGp,
    context: &[f64],
    candidates: &[Vec<f64>],
    threshold: f64,
    beta: f64,
    known_safe: &[Vec<f64>],
    options: &SafetyOptions,
    scratch: &mut Vec<Vec<f64>>,
) -> Vec<CandidateAssessment> {
    let model_ready = model.is_fitted() && model.len() >= options.min_observations;
    let threshold = threshold - options.threshold_margin * threshold.abs();
    // Both the batched arm and the scalar recovery arm derive assessments the same way;
    // one shared constructor keeps them bit-identical by construction.
    let assess = |index: usize, posterior: Posterior| {
        let lcb = lower_confidence_bound(&posterior, beta);
        let ucb = upper_confidence_bound(&posterior, beta);
        CandidateAssessment {
            index,
            posterior: Some(posterior),
            lcb,
            ucb,
            black_safe: lcb >= threshold,
        }
    };
    let unassessable = |index: usize| CandidateAssessment {
        index,
        posterior: None,
        lcb: f64::NEG_INFINITY,
        ucb: f64::NEG_INFINITY,
        black_safe: false,
    };
    if model_ready {
        match model.predict_batch_with_scratch(candidates, context, scratch) {
            Ok(posteriors) => posteriors
                .into_iter()
                .enumerate()
                .map(|(index, posterior)| assess(index, posterior))
                .collect(),
            Err(_) => candidates
                .iter()
                .enumerate()
                .map(
                    |(index, candidate)| match model.predict(candidate, context) {
                        Ok(posterior) => assess(index, posterior),
                        Err(_) => unassessable(index),
                    },
                )
                .collect(),
        }
    } else {
        // Cold start: proximity to a known-safe configuration, decided on squared
        // distances so the C × |known_safe| sweep performs no square roots.
        candidates
            .iter()
            .enumerate()
            .map(|(index, candidate)| {
                let near_safe = known_safe.iter().any(|safe| {
                    linalg::vecops::within_radius(candidate, safe, options.cold_start_radius)
                });
                CandidateAssessment {
                    index,
                    posterior: None,
                    lcb: if near_safe {
                        threshold
                    } else {
                        f64::NEG_INFINITY
                    },
                    ucb: threshold,
                    black_safe: near_safe,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp::contextual::ContextObservation;

    fn trained_model() -> ContextualGp {
        // f(θ, c) = 10 - 20·(θ - 0.5)²: safe region is around θ = 0.5 for a threshold of 8.
        let mut model = ContextualGp::new(1, 1);
        for i in 0..15 {
            let theta = i as f64 / 14.0;
            model.add_observation(ContextObservation {
                context: vec![0.0],
                config: vec![theta],
                performance: 10.0 - 20.0 * (theta - 0.5).powi(2),
            });
        }
        model.refit().unwrap();
        model
    }

    #[test]
    fn confident_good_candidates_are_safe_and_bad_ones_are_not() {
        let model = trained_model();
        let candidates = vec![vec![0.5], vec![0.05], vec![0.95]];
        let out = assess_candidates(
            &model,
            &[0.0],
            &candidates,
            8.0,
            2.0,
            &[],
            &SafetyOptions::default(),
        );
        assert!(
            out[0].black_safe,
            "θ=0.5 should be safe: lcb={}",
            out[0].lcb
        );
        assert!(
            !out[1].black_safe,
            "θ=0.05 should be unsafe: lcb={}",
            out[1].lcb
        );
        assert!(!out[2].black_safe);
        assert!(out[0].ucb >= out[0].lcb);
    }

    #[test]
    fn higher_beta_is_more_conservative() {
        let model = trained_model();
        let candidates = vec![vec![0.42]];
        let relaxed = assess_candidates(
            &model,
            &[0.0],
            &candidates,
            8.0,
            0.5,
            &[],
            &SafetyOptions::default(),
        );
        let strict = assess_candidates(
            &model,
            &[0.0],
            &candidates,
            8.0,
            5.0,
            &[],
            &SafetyOptions::default(),
        );
        assert!(relaxed[0].lcb > strict[0].lcb);
    }

    #[test]
    fn batched_assessment_is_bit_identical_to_scalar_prediction() {
        let model = trained_model();
        let beta = 2.2;
        let threshold = 8.0;
        let options = SafetyOptions::default();
        let candidates: Vec<Vec<f64>> = (0..25).map(|i| vec![i as f64 / 24.0]).collect();
        let out = assess_candidates(&model, &[0.0], &candidates, threshold, beta, &[], &options);
        let margin = threshold - options.threshold_margin * threshold.abs();
        for (candidate, a) in candidates.iter().zip(out.iter()) {
            let p = model.predict(candidate, &[0.0]).unwrap();
            let posterior = a.posterior.as_ref().expect("posterior present");
            assert_eq!(p.mean.to_bits(), posterior.mean.to_bits());
            assert_eq!(p.std_dev.to_bits(), posterior.std_dev.to_bits());
            assert_eq!(a.lcb.to_bits(), lower_confidence_bound(&p, beta).to_bits());
            assert_eq!(a.ucb.to_bits(), upper_confidence_bound(&p, beta).to_bits());
            assert_eq!(a.black_safe, a.lcb >= margin);
        }
    }

    #[test]
    fn malformed_candidate_degrades_gracefully_without_poisoning_the_batch() {
        // A wrong-dimension candidate fails the batched call; the scalar recovery loop
        // must still assess the well-formed candidates exactly as before and mark only
        // the malformed one unsafe.
        let model = trained_model();
        let candidates = vec![vec![0.5], vec![0.5, 0.9], vec![0.55]];
        let out = assess_candidates(
            &model,
            &[0.0],
            &candidates,
            8.0,
            2.0,
            &[],
            &SafetyOptions::default(),
        );
        assert!(out[0].black_safe);
        assert!(!out[1].black_safe);
        assert!(out[1].posterior.is_none());
        assert_eq!(out[1].lcb, f64::NEG_INFINITY);
        let p = model.predict(&candidates[2], &[0.0]).unwrap();
        assert_eq!(
            out[2].posterior.as_ref().unwrap().mean.to_bits(),
            p.mean.to_bits()
        );
    }

    #[test]
    fn cold_start_falls_back_to_proximity() {
        let model = ContextualGp::new(2, 1); // empty model
        let candidates = vec![vec![0.5, 0.5], vec![0.9, 0.9]];
        let known_safe = vec![vec![0.5, 0.52]];
        let out = assess_candidates(
            &model,
            &[0.0],
            &candidates,
            100.0,
            2.0,
            &known_safe,
            &SafetyOptions::default(),
        );
        assert!(out[0].black_safe, "close to a known-safe configuration");
        assert!(
            !out[1].black_safe,
            "far from every known-safe configuration"
        );
        assert!(out[0].posterior.is_none());
    }

    #[test]
    fn cold_start_without_known_safe_admits_nothing() {
        let model = ContextualGp::new(1, 1);
        let out = assess_candidates(
            &model,
            &[0.0],
            &[vec![0.5]],
            0.0,
            2.0,
            &[],
            &SafetyOptions::default(),
        );
        assert!(!out[0].black_safe);
    }
}
