//! Clustering and model selection (§5.3, Algorithm 1).
//!
//! A single contextual GP over every observation ever collected would cost `O(n³)` per
//! update and would transfer knowledge between unrelated workload phases ("negative
//! transfer"). OnlineTune therefore clusters the observed contexts with DBSCAN, fits one
//! contextual GP per cluster, learns an SVM decision boundary to route *new* contexts to
//! the right model, and re-clusters only when a mutual-information score indicates the
//! context distribution has shifted.

use gp::contextual::{ContextObservation, ContextualGp, ObservationBudget};
use gp::hyperopt::HyperOptOptions;
use mlkit::dbscan::{cluster_members, dbscan, DbscanParams};
use mlkit::normalized_mutual_information;
use mlkit::svm::{LinearSvm, SvmOptions};
use rand::Rng;

/// Options controlling clustering and model selection.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ClusterOptions {
    /// DBSCAN parameters over the context space.
    pub dbscan: DbscanParams,
    /// Mutual-information threshold below which a re-clustering is adopted (0.5 in the
    /// paper's experiments).
    pub mi_threshold: f64,
    /// How many new observations arrive between re-clustering checks.
    pub recluster_check_period: usize,
    /// Minimum number of observations before the first clustering is attempted.
    pub min_observations_for_clustering: usize,
    /// Per-model observation budget window `P`: a cluster model holds at most `P`
    /// observations; overflowing triggers a batch eviction that keeps the most recent and
    /// highest-information points (see [`gp::contextual::ObservationBudget`]), bounding
    /// both memory and the quadratic incremental-update cost.
    pub max_observations_per_model: usize,
    /// Refit kernel hyper-parameters every this many model updates.
    pub hyperopt_period: usize,
    /// Worker threads used for the periodic hyper-parameter optimization's restart
    /// searches (`1` = serial, `0` = one per CPU; see
    /// [`gp::hyperopt::HyperOptOptions::workers`]). Selected hyper-parameters are
    /// worker-count independent bit for bit, so this only affects wall-clock time —
    /// snapshot replay across machines with different settings stays exact. The fleet
    /// service clamps this so tenant-level and hyperopt-level parallelism compose
    /// without oversubscription.
    ///
    /// Deserializes to 0 from snapshots written before the field existed
    /// (`#[serde(default)]`); a 0 is normalized to 1 (serial) where the grant is
    /// consumed, so old snapshots restore instead of erroring.
    #[serde(default)]
    pub hyperopt_workers: usize,
    /// Intra-op worker threads granted to each cluster model: threads *inside* one
    /// refit's Cholesky factorization and one suggest sweep's `predict_batch` (see
    /// [`gp::regression::GaussianProcess::set_intraop_workers`]). Multiplies with
    /// [`ClusterOptions::hyperopt_workers`] during periodic hyper-parameter refits; the
    /// fleet service grants it from the third level of its parallelism budget. All
    /// results are bit-identical at every value. Deserializes to 0 from older
    /// snapshots; normalized to 1 where consumed.
    #[serde(default)]
    pub intraop_workers: usize,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            dbscan: DbscanParams {
                eps: 0.25,
                min_points: 4,
            },
            mi_threshold: 0.5,
            recluster_check_period: 25,
            min_observations_for_clustering: 30,
            max_observations_per_model: 150,
            hyperopt_period: 20,
            hyperopt_workers: 1,
            intraop_workers: 1,
        }
    }
}

/// The observation repository plus the per-cluster models and the routing boundary.
pub struct ClusterManager {
    config_dim: usize,
    context_dim: usize,
    options: ClusterOptions,
    /// All observations ever collected (the "data repository" of the architecture figure).
    observations: Vec<ContextObservation>,
    /// Cluster label of each observation under the current clustering.
    labels: Vec<i32>,
    /// One contextual GP per cluster.
    models: Vec<ContextualGp>,
    svm: Option<LinearSvm>,
    updates_since_hyperopt: Vec<usize>,
    observations_since_recluster_check: usize,
    recluster_count: usize,
    /// Suppresses periodic hyper-parameter refits (runtime-only, never serialized: the
    /// fleet re-applies it from the tenant's serialized degradation tier on restore).
    hyperopt_suppressed: bool,
    /// Observability sink (runtime-only, never serialized, no-op by default);
    /// re-installed on every model the manager builds or rebuilds.
    telemetry: telemetry::TelemetryHandle,
}

/// Builds a per-cluster model with the observation budget implied by `options`.
fn budgeted_model(config_dim: usize, context_dim: usize, options: &ClusterOptions) -> ContextualGp {
    let mut model = ContextualGp::new(config_dim, context_dim);
    model.set_budget(Some(ObservationBudget::new(
        options.max_observations_per_model,
    )));
    // A grant of 0 (deserialized from a pre-grant snapshot) means serial, not "per CPU":
    // resolving against the machine belongs to the fleet budget, not here.
    model.set_intraop_workers(options.intraop_workers.max(1));
    model
}

impl ClusterManager {
    /// Creates a manager with a single (initially empty) model.
    pub fn new(config_dim: usize, context_dim: usize, options: ClusterOptions) -> Self {
        let model = budgeted_model(config_dim, context_dim, &options);
        ClusterManager {
            config_dim,
            context_dim,
            options,
            observations: Vec::new(),
            labels: Vec::new(),
            models: vec![model],
            svm: None,
            updates_since_hyperopt: vec![0],
            observations_since_recluster_check: 0,
            recluster_count: 0,
            hyperopt_suppressed: false,
            telemetry: telemetry::TelemetryHandle::disabled(),
        }
    }

    /// Installs a telemetry sink on the manager and every per-cluster model
    /// (runtime-only; excluded from [`ClusterManager::export_state`], so snapshots are
    /// byte-identical whether or not one is installed).
    pub fn set_telemetry(&mut self, telemetry: telemetry::TelemetryHandle) {
        for model in &mut self.models {
            model.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// Total number of observations in the repository.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Number of per-cluster models.
    pub fn n_models(&self) -> usize {
        self.models.len()
    }

    /// How many times the clustering has been re-learned.
    pub fn recluster_count(&self) -> usize {
        self.recluster_count
    }

    /// Re-grants the hyperopt worker budget (see [`ClusterOptions::hyperopt_workers`]).
    /// Runtime-only: selected hyper-parameters are worker-count independent, so this
    /// never changes model behaviour — the fleet service calls it when a session is
    /// restored on a machine whose parallelism budget differs from the snapshotting one.
    pub fn set_hyperopt_workers(&mut self, workers: usize) {
        self.options.hyperopt_workers = workers;
    }

    /// Re-grants the intra-op worker budget on the options and every existing model
    /// (see [`ClusterOptions::intraop_workers`]). Runtime-only: every computed value is
    /// bit-identical at every grant, so this never changes model behaviour.
    pub fn set_intraop_workers(&mut self, workers: usize) {
        self.options.intraop_workers = workers;
        for model in &mut self.models {
            model.set_intraop_workers(workers.max(1));
        }
    }

    /// Suppresses (or re-enables) the periodic hyper-parameter refit — the degraded
    /// serving tiers shed the one O(n³) step of the observe path this way. While
    /// suppressed, `updates_since_hyperopt` keeps counting, so the deferred refit fires
    /// on the first observation after suppression lifts. Runtime-only: the flag is not
    /// part of the exported state; restore paths re-apply it from the tenant's
    /// serialized degradation tier.
    pub fn set_hyperopt_suppressed(&mut self, suppressed: bool) {
        self.hyperopt_suppressed = suppressed;
    }

    /// All observations (immutable view).
    pub fn observations(&self) -> &[ContextObservation] {
        &self.observations
    }

    /// The model for a cluster id.
    pub fn model(&self, id: usize) -> &ContextualGp {
        &self.models[id]
    }

    /// Selects the model responsible for a context (Algorithm 3, line 6): the SVM routes
    /// contexts once a clustering exists, otherwise the single global model is used.
    pub fn select_model(&self, context: &[f64]) -> usize {
        match &self.svm {
            Some(svm) => svm
                .predict(context)
                .min(self.models.len().saturating_sub(1)),
            None => 0,
        }
    }

    /// Adds an observation, assigns it to a cluster and folds it into that cluster's
    /// model **incrementally** (`O(n²)` via [`ContextualGp::observe`] — the hot path).
    /// Periodically the cluster's kernel hyper-parameters are re-optimized, which is the
    /// one case that requires a from-scratch `O(n³)` refit (the cached factorization is
    /// invalidated by the new hyper-parameters). Returns the cluster id.
    ///
    /// A wrong-dimension observation is rejected wholesale — it enters neither the
    /// repository nor any model (a poisoned repository would resurface at the next
    /// re-clustering) — and cluster 0 is returned. The check holds in release builds.
    pub fn add_observation<R: Rng>(&mut self, obs: ContextObservation, rng: &mut R) -> usize {
        if obs.config.len() != self.config_dim || obs.context.len() != self.context_dim {
            return 0;
        }
        let cluster = self.select_model(&obs.context);
        self.observations.push(obs.clone());
        self.labels.push(cluster as i32);
        self.observations_since_recluster_check += 1;

        let model = &mut self.models[cluster];
        self.updates_since_hyperopt[cluster] += 1;
        if !self.hyperopt_suppressed
            && self.updates_since_hyperopt[cluster] >= self.options.hyperopt_period
        {
            // Hyper-parameter re-optimization invalidates the cached factorization
            // anyway, so skip the incremental update on this iteration: add the raw
            // observation and let the hyperopt's internal refit (which also enforces the
            // observation budget) do the one O(n³) fit.
            self.updates_since_hyperopt[cluster] = 0;
            model.add_observation(obs);
            let _ = model.refit_with_hyperopt(
                &HyperOptOptions {
                    restarts: 1,
                    max_iters: 30,
                    // 0 deserialized from a pre-grant snapshot means serial here; the
                    // hyperopt's own "0 = per CPU" convention is reserved for callers
                    // that explicitly opt in, not for missing snapshot fields.
                    workers: self.options.hyperopt_workers.max(1),
                    intraop_workers: self.options.intraop_workers.max(1),
                    ..Default::default()
                },
                rng,
            );
        } else {
            // Incremental model update; the model's observation budget evicts (and
            // refits) in batches once the window overflows.
            let _ = model.observe(obs);
        }
        self.telemetry
            .set_gauge(telemetry::GaugeId::ClusterModels, self.models.len() as f64);
        self.telemetry.set_gauge(
            telemetry::GaugeId::ModelObservations,
            self.models[cluster].len() as f64,
        );
        cluster
    }

    /// Checks whether re-clustering is due and, if the simulated new clustering differs
    /// enough (NMI below the threshold) or no clustering exists yet, re-learns clusters,
    /// per-cluster models and the SVM boundary (Algorithm 1). Returns `true` when a
    /// re-clustering happened.
    pub fn maybe_recluster<R: Rng>(&mut self, rng: &mut R) -> bool {
        if self.observations.len() < self.options.min_observations_for_clustering {
            return false;
        }
        if self.observations_since_recluster_check < self.options.recluster_check_period
            && self.svm.is_some()
        {
            return false;
        }
        self.observations_since_recluster_check = 0;

        let contexts: Vec<Vec<f64>> = self
            .observations
            .iter()
            .map(|o| o.context.clone())
            .collect();
        let mut candidate = dbscan(&contexts, &self.options.dbscan);
        assign_noise_to_nearest(&contexts, &mut candidate);

        let needs_relearn = if self.svm.is_none() {
            true
        } else {
            normalized_mutual_information(&self.labels, &candidate) < self.options.mi_threshold
        };
        if !needs_relearn {
            return false;
        }

        let groups = cluster_members(&candidate);
        let groups: Vec<Vec<usize>> = if groups.is_empty() {
            vec![(0..self.observations.len()).collect()]
        } else {
            groups
        };

        // Rebuild the per-cluster models.
        let mut models = Vec::with_capacity(groups.len());
        let mut labels = vec![0i32; self.observations.len()];
        for (cid, members) in groups.iter().enumerate() {
            let mut model = budgeted_model(self.config_dim, self.context_dim, &self.options);
            model.set_telemetry(self.telemetry.clone());
            let cap = self.options.max_observations_per_model;
            let start = members.len().saturating_sub(cap);
            for &idx in &members[start..] {
                model.add_observation(self.observations[idx].clone());
            }
            let _ = model.refit();
            models.push(model);
            for &idx in members {
                labels[idx] = cid as i32;
            }
        }

        // Train the SVM routing boundary on (context, cluster) pairs.
        let label_usize: Vec<usize> = labels.iter().map(|&l| l.max(0) as usize).collect();
        self.svm = LinearSvm::train(&contexts, &label_usize, &SvmOptions::default(), rng);

        let models_before = self.models.len();
        self.models = models;
        self.labels = labels;
        self.updates_since_hyperopt = vec![0; self.models.len()];
        self.recluster_count += 1;
        self.telemetry.incr(telemetry::CounterId::Reclusters);
        if self.telemetry.is_enabled() {
            self.telemetry.event(
                telemetry::EventKind::Recluster,
                "cluster-manager",
                &format!(
                    "observations={} models {} -> {} recluster_count={}",
                    self.observations.len(),
                    models_before,
                    self.models.len(),
                    self.recluster_count
                ),
            );
        }
        true
    }
}

/// Serializable state of one per-cluster contextual GP model.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelState {
    /// Observations the model is fitted on.
    pub observations: Vec<ContextObservation>,
    /// Kernel hyper-parameters in log space.
    pub kernel_params: Vec<f64>,
    /// Observation-noise variance.
    pub noise_variance: f64,
}

/// Serializable state of the SVM routing boundary.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SvmState {
    /// Per-class weight vectors.
    pub weights: Vec<Vec<f64>>,
    /// Per-class biases.
    pub biases: Vec<f64>,
}

/// Complete serializable state of a [`ClusterManager`].
///
/// Model fitting is deterministic, so [`ClusterManager::restore`] reproduces the manager's
/// behaviour bit-for-bit from this state plus the (unserialized) [`ClusterOptions`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ClusterManagerState {
    /// Configuration-space dimensionality.
    pub config_dim: usize,
    /// Context-space dimensionality.
    pub context_dim: usize,
    /// The full observation repository.
    pub observations: Vec<ContextObservation>,
    /// Cluster label of each repository observation.
    pub labels: Vec<i32>,
    /// Per-cluster model states.
    pub models: Vec<ModelState>,
    /// The routing boundary, when one has been trained.
    pub svm: Option<SvmState>,
    /// Per-model updates since the last hyper-parameter optimization.
    pub updates_since_hyperopt: Vec<usize>,
    /// Observations since the last re-clustering check.
    pub observations_since_recluster_check: usize,
    /// Number of re-clusterings performed.
    pub recluster_count: usize,
}

impl ClusterManager {
    /// Exports the complete manager state for snapshots.
    pub fn export_state(&self) -> ClusterManagerState {
        ClusterManagerState {
            config_dim: self.config_dim,
            context_dim: self.context_dim,
            observations: self.observations.clone(),
            labels: self.labels.clone(),
            models: self
                .models
                .iter()
                .map(|m| {
                    let (kernel_params, noise_variance) = m.hyperparams();
                    ModelState {
                        observations: m.observations().to_vec(),
                        kernel_params,
                        noise_variance,
                    }
                })
                .collect(),
            svm: self.svm.as_ref().map(|svm| SvmState {
                weights: svm.weights().to_vec(),
                biases: svm.biases().to_vec(),
            }),
            updates_since_hyperopt: self.updates_since_hyperopt.clone(),
            observations_since_recluster_check: self.observations_since_recluster_check,
            recluster_count: self.recluster_count,
        }
    }

    /// Rebuilds a manager from an exported state. Each model is refitted on its restored
    /// observations with its restored hyper-parameters; fitting is deterministic, so the
    /// restored manager predicts and routes identically to the exported one.
    pub fn restore(state: ClusterManagerState, options: ClusterOptions) -> Self {
        let models: Vec<ContextualGp> = state
            .models
            .iter()
            .map(|ms| {
                let mut model = budgeted_model(state.config_dim, state.context_dim, &options);
                model.set_hyperparams(&ms.kernel_params, ms.noise_variance);
                model.set_observations(ms.observations.clone());
                if !ms.observations.is_empty() {
                    let _ = model.refit();
                }
                model
            })
            .collect();
        let models = if models.is_empty() {
            vec![budgeted_model(
                state.config_dim,
                state.context_dim,
                &options,
            )]
        } else {
            models
        };
        let mut updates = state.updates_since_hyperopt;
        updates.resize(models.len(), 0);
        ClusterManager {
            config_dim: state.config_dim,
            context_dim: state.context_dim,
            options,
            observations: state.observations,
            labels: state.labels,
            svm: state
                .svm
                .and_then(|s| LinearSvm::from_parts(s.weights, s.biases)),
            models,
            updates_since_hyperopt: updates,
            observations_since_recluster_check: state.observations_since_recluster_check,
            recluster_count: state.recluster_count,
            hyperopt_suppressed: false,
            telemetry: telemetry::TelemetryHandle::disabled(),
        }
    }
}

/// DBSCAN noise points are attached to the cluster of their nearest clustered neighbour
/// (every observation must belong to some model).
fn assign_noise_to_nearest(points: &[Vec<f64>], labels: &mut [i32]) {
    let clustered: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l >= 0)
        .map(|(i, _)| i)
        .collect();
    if clustered.is_empty() {
        // Everything is noise: put it all in one cluster.
        labels.iter_mut().for_each(|l| *l = 0);
        return;
    }
    for i in 0..labels.len() {
        if labels[i] >= 0 {
            continue;
        }
        let nearest = clustered
            .iter()
            .min_by(|&&a, &&b| {
                let da = linalg::vecops::euclidean_distance(&points[i], &points[a]);
                let db = linalg::vecops::euclidean_distance(&points[i], &points[b]);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied()
            .expect("clustered set is non-empty");
        labels[i] = labels[nearest];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn obs(context: Vec<f64>, config: Vec<f64>, perf: f64) -> ContextObservation {
        ContextObservation {
            context,
            config,
            performance: perf,
        }
    }

    /// Two well-separated context regimes with different optima.
    fn two_regime_observations(n_per: usize) -> Vec<ContextObservation> {
        let mut out = Vec::new();
        for i in 0..n_per {
            let theta = i as f64 / n_per as f64;
            out.push(obs(vec![0.1, 0.1], vec![theta], -(theta - 0.2).powi(2)));
            out.push(obs(vec![0.9, 0.9], vec![theta], -(theta - 0.8).powi(2)));
        }
        out
    }

    #[test]
    fn starts_with_a_single_model() {
        let mgr = ClusterManager::new(1, 2, ClusterOptions::default());
        assert_eq!(mgr.n_models(), 1);
        assert_eq!(mgr.select_model(&[0.3, 0.4]), 0);
        assert!(mgr.is_empty());
    }

    #[test]
    fn reclusters_two_regimes_into_two_models_and_routes_contexts() {
        let mut rng = StdRng::seed_from_u64(3);
        let options = ClusterOptions {
            min_observations_for_clustering: 10,
            recluster_check_period: 5,
            ..Default::default()
        };
        let mut mgr = ClusterManager::new(1, 2, options);
        for o in two_regime_observations(20) {
            mgr.add_observation(o, &mut rng);
        }
        assert!(mgr.maybe_recluster(&mut rng));
        assert_eq!(mgr.n_models(), 2);
        assert_eq!(mgr.recluster_count(), 1);
        // Contexts from the two regimes route to different models...
        let a = mgr.select_model(&[0.1, 0.12]);
        let b = mgr.select_model(&[0.88, 0.9]);
        assert_ne!(a, b);
        // ... and each model has learned its regime's optimum region.
        let model_a = mgr.model(a);
        let near = model_a.predict(&[0.2], &[0.1, 0.1]).unwrap().mean;
        let far = model_a.predict(&[0.8], &[0.1, 0.1]).unwrap().mean;
        assert!(near > far, "model for regime A should prefer θ≈0.2");
    }

    #[test]
    fn does_not_recluster_below_minimum_observations() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mgr = ClusterManager::new(1, 2, ClusterOptions::default());
        for o in two_regime_observations(5) {
            mgr.add_observation(o, &mut rng);
        }
        assert!(!mgr.maybe_recluster(&mut rng));
        assert_eq!(mgr.n_models(), 1);
    }

    #[test]
    fn stable_context_distribution_does_not_trigger_relearning() {
        let mut rng = StdRng::seed_from_u64(5);
        let options = ClusterOptions {
            min_observations_for_clustering: 10,
            recluster_check_period: 5,
            ..Default::default()
        };
        let mut mgr = ClusterManager::new(1, 2, options);
        for o in two_regime_observations(15) {
            mgr.add_observation(o, &mut rng);
        }
        assert!(mgr.maybe_recluster(&mut rng));
        let first = mgr.recluster_count();
        // More observations from the *same* two regimes: the simulated clustering matches the
        // existing one (NMI ≈ 1), so no re-learning should happen.
        for o in two_regime_observations(15) {
            mgr.add_observation(o, &mut rng);
        }
        let _ = mgr.maybe_recluster(&mut rng);
        assert_eq!(mgr.recluster_count(), first);
    }

    #[test]
    fn per_model_observation_cap_is_enforced() {
        let mut rng = StdRng::seed_from_u64(7);
        let options = ClusterOptions {
            max_observations_per_model: 20,
            ..Default::default()
        };
        let mut mgr = ClusterManager::new(1, 2, options);
        for i in 0..60 {
            let theta = (i % 10) as f64 / 10.0;
            mgr.add_observation(obs(vec![0.5, 0.5], vec![theta], theta), &mut rng);
        }
        assert_eq!(mgr.len(), 60);
        assert!(mgr.model(0).len() <= 20);
    }

    #[test]
    fn wrong_dimension_observations_never_enter_the_repository() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut mgr = ClusterManager::new(1, 2, ClusterOptions::default());
        mgr.add_observation(obs(vec![0.5, 0.5], vec![0.5], 1.0), &mut rng);
        // Wrong config dimension and wrong context dimension: both rejected wholesale.
        mgr.add_observation(obs(vec![0.5, 0.5], vec![0.5, 0.9], 1.0), &mut rng);
        mgr.add_observation(obs(vec![0.5], vec![0.5], 1.0), &mut rng);
        assert_eq!(mgr.len(), 1);
        assert_eq!(mgr.model(0).len(), 1);
        // A later recluster sees only well-formed observations.
        assert!(!mgr.maybe_recluster(&mut rng));
        assert_eq!(mgr.len(), 1);
    }

    #[test]
    fn all_noise_contexts_collapse_to_one_cluster() {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for i in 0..5 {
            points.push(vec![i as f64 * 100.0]);
            labels.push(-1);
        }
        assign_noise_to_nearest(&points, &mut labels);
        assert!(labels.iter().all(|&l| l == 0));
    }
}
