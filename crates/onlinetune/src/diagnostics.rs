//! Per-iteration diagnostics: what the tuner did and how long each stage took.
//!
//! These power three artefacts of the paper's evaluation:
//! Figure 8 (per-iteration computation time), Table A1 (stage-level time breakdown) and
//! Figure 13 (selected model, subspace distance from the default, safety-set size).

use serde::Serialize;

/// Wall-clock timings of the OnlineTune stages for one iteration, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct StageTimings {
    /// Selecting the per-cluster model for the observed context (SVM routing).
    pub model_selection_s: f64,
    /// Adapting the configuration subspace.
    pub subspace_adaptation_s: f64,
    /// Black-box + white-box safety assessment over the discretized candidates.
    pub safety_assessment_s: f64,
    /// Candidate selection (UCB / boundary exploration).
    pub candidate_selection_s: f64,
    /// Model update (GP refit and periodic hyper-parameter optimization + re-clustering).
    pub model_update_s: f64,
}

impl StageTimings {
    /// Total tuner-side computation time for the iteration.
    pub fn total_s(&self) -> f64 {
        self.model_selection_s
            + self.subspace_adaptation_s
            + self.safety_assessment_s
            + self.candidate_selection_s
            + self.model_update_s
    }
}

/// Everything the tuner can report about one iteration.
#[derive(Debug, Clone, Default, Serialize)]
pub struct IterationDiagnostics {
    /// Iteration counter (1-based, incremented per suggestion).
    pub iteration: usize,
    /// Index of the per-cluster model selected for the context.
    pub selected_model: usize,
    /// Number of per-cluster models currently maintained.
    pub n_models: usize,
    /// Number of times the clustering has been re-learned so far.
    pub recluster_count: usize,
    /// Hypercube radius, when the current subspace is a hypercube.
    pub subspace_radius: Option<f64>,
    /// Whether the current subspace is a line region.
    pub subspace_is_line: bool,
    /// L2 distance (normalized space) between the subspace centre and the initial (default)
    /// configuration — the quantity plotted in Figure 13 (left).
    pub center_distance_from_default: f64,
    /// L2 distance between the recommended configuration and the initial configuration.
    pub recommendation_distance_from_default: f64,
    /// Number of candidates produced by discretizing the subspace.
    pub candidates_total: usize,
    /// Number of candidates that passed both safety checks (the safety-set size of
    /// Figure 13, right).
    pub safety_set_size: usize,
    /// Candidates rejected by the black-box (GP lower bound) check.
    pub blackbox_rejections: usize,
    /// Candidates rejected by the white-box rules.
    pub whitebox_rejections: usize,
    /// Name of the white-box rule that was ignored for this recommendation, if any.
    pub overridden_rule: Option<String>,
    /// Whether the tuner fell back to re-applying the best known configuration because the
    /// safety set was empty.
    pub fell_back_to_center: bool,
    /// Whether the recommendation came from the boundary-exploration branch.
    pub explored_boundary: bool,
    /// Stage timings.
    pub timings: StageTimings,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_is_the_sum_of_stages() {
        let t = StageTimings {
            model_selection_s: 0.01,
            subspace_adaptation_s: 0.02,
            safety_assessment_s: 0.03,
            candidate_selection_s: 0.04,
            model_update_s: 0.05,
        };
        assert!((t.total_s() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn default_diagnostics_are_empty() {
        let d = IterationDiagnostics::default();
        assert_eq!(d.safety_set_size, 0);
        assert!(d.overridden_rule.is_none());
        assert_eq!(d.timings.total_s(), 0.0);
    }

    #[test]
    fn diagnostics_serialize_to_json() {
        let d = IterationDiagnostics {
            iteration: 3,
            selected_model: 1,
            ..Default::default()
        };
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("\"iteration\":3"));
        assert!(json.contains("\"selected_model\":1"));
    }
}
