//! Configuration-subspace adaptation (Algorithm 2, §6.1 and Appendix A3).
//!
//! Instead of optimizing over the whole (normalized) configuration space `[0, 1]^m`,
//! OnlineTune restricts each step to a small subspace centred on the best configuration
//! found so far. The subspace alternates between
//!
//! * a **hypercube region** `{θ : ‖θ − θ_best‖₂ ≤ R}` whose radius doubles after
//!   `η_succ` consecutive successes and halves after `η_fail` consecutive failures, and
//! * a **line region** `{θ_best + α·d}` whose direction is either random (exploration) or
//!   aligned with an important knob (exploitation), following the direction oracle of
//!   Appendix A3.2.
//!
//! The subspace is discretized into a finite candidate set on which safety can be assessed
//! point-wise (the paper's argument for why SAFEOPT-style discretization becomes feasible).

use rand::Rng;

/// Which kind of region the subspace currently is.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Region {
    /// `{θ : ‖θ − center‖₂ ≤ radius} ∩ [0,1]^m`
    Hypercube {
        /// Current radius in normalized space.
        radius: f64,
    },
    /// `{center + α·direction : α ∈ R} ∩ [0,1]^m`
    Line {
        /// Unit direction vector.
        direction: Vec<f64>,
    },
}

/// Options controlling subspace adaptation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SubspaceOptions {
    /// Initial hypercube radius (normalized units). The paper initializes to ~5 % of each
    /// dimension's range.
    pub initial_radius: f64,
    /// Upper bound on the hypercube radius.
    pub max_radius: f64,
    /// Lower bound on the hypercube radius before a switch to a line region is forced.
    pub min_radius: f64,
    /// Consecutive successes before the radius doubles (`η_succ`).
    pub success_threshold: usize,
    /// Consecutive failures before the radius halves (`η_fail`).
    pub failure_threshold: usize,
    /// Consecutive failures before switching the region type.
    pub switch_threshold: usize,
    /// Number of candidates produced when discretizing the region.
    pub candidates: usize,
}

impl Default for SubspaceOptions {
    fn default() -> Self {
        SubspaceOptions {
            initial_radius: 0.12,
            max_radius: 0.8,
            min_radius: 0.01,
            success_threshold: 3,
            failure_threshold: 3,
            switch_threshold: 5,
            candidates: 220,
        }
    }
}

/// The adaptive subspace belonging to one surrogate model.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Subspace {
    region: Region,
    center: Vec<f64>,
    options: SubspaceOptions,
    consecutive_successes: usize,
    consecutive_failures: usize,
    failures_since_switch: usize,
}

impl Subspace {
    /// Creates a hypercube subspace centred on the (normalized) initial safe configuration.
    pub fn new(center: Vec<f64>, options: SubspaceOptions) -> Self {
        Subspace {
            region: Region::Hypercube {
                radius: options.initial_radius,
            },
            center,
            options,
            consecutive_successes: 0,
            consecutive_failures: 0,
            failures_since_switch: 0,
        }
    }

    /// The current region.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// The current centre (the best configuration found so far).
    pub fn center(&self) -> &[f64] {
        &self.center
    }

    /// Current hypercube radius, if the region is a hypercube.
    pub fn radius(&self) -> Option<f64> {
        match &self.region {
            Region::Hypercube { radius } => Some(*radius),
            Region::Line { .. } => None,
        }
    }

    /// Moves the subspace centre (called when a better configuration is observed).
    pub fn recenter(&mut self, new_center: Vec<f64>) {
        debug_assert_eq!(new_center.len(), self.center.len());
        self.center = new_center;
    }

    /// Records the outcome of the last recommendation: `success` means it improved on the
    /// previous best. This drives the counters of Algorithm 2.
    pub fn record_outcome(&mut self, success: bool) {
        if success {
            self.consecutive_successes += 1;
            self.consecutive_failures = 0;
            self.failures_since_switch = 0;
        } else {
            self.consecutive_failures += 1;
            self.consecutive_successes = 0;
            self.failures_since_switch += 1;
        }
    }

    /// Adapts the region (Algorithm 2). `direction_oracle` supplies the direction when the
    /// region switches to a line; `no_safe_candidates` forces a switch (the paper's other
    /// switching-rule trigger: "no unevaluated safe configuration exists in Θ").
    pub fn adapt(
        &mut self,
        direction_oracle: &mut dyn FnMut() -> Vec<f64>,
        no_safe_candidates: bool,
    ) {
        let switch =
            no_safe_candidates || self.failures_since_switch >= self.options.switch_threshold;
        match &mut self.region {
            Region::Hypercube { radius } => {
                if self.consecutive_successes >= self.options.success_threshold {
                    *radius = (*radius * 2.0).min(self.options.max_radius);
                    self.consecutive_successes = 0;
                    self.consecutive_failures = 0;
                }
                if self.consecutive_failures >= self.options.failure_threshold {
                    *radius = (*radius / 2.0).max(self.options.min_radius);
                    self.consecutive_failures = 0;
                    self.consecutive_successes = 0;
                }
                if switch {
                    let mut d = direction_oracle();
                    let n = linalg::vecops::norm(&d);
                    if n < 1e-12 {
                        d = vec![1.0 / (self.center.len() as f64).sqrt(); self.center.len()];
                    } else {
                        d.iter_mut().for_each(|v| *v /= n);
                    }
                    self.region = Region::Line { direction: d };
                    self.failures_since_switch = 0;
                }
            }
            Region::Line { .. } => {
                if switch {
                    self.region = Region::Hypercube {
                        radius: self.options.initial_radius,
                    };
                    self.failures_since_switch = 0;
                }
            }
        }
    }

    /// Discretizes the region into candidate configurations inside `[0, 1]^m`.
    ///
    /// The centre itself is always the first candidate so the tuner can always fall back to
    /// the best known configuration.
    pub fn discretize<R: Rng>(&self, rng: &mut R) -> Vec<Vec<f64>> {
        let dim = self.center.len();
        let n = self.options.candidates.max(2);
        let mut candidates = Vec::with_capacity(n + 1);
        candidates.push(self.center.clone());
        match &self.region {
            Region::Hypercube { radius } => {
                for _ in 0..n {
                    // Sample a direction uniformly on the sphere, then a radius with
                    // density pushed toward the boundary (r^(1/3)) so that the candidate
                    // set covers the shell as well as the interior.
                    let mut dir: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let norm = linalg::vecops::norm(&dir).max(1e-12);
                    dir.iter_mut().for_each(|v| *v /= norm);
                    let r = radius * rng.gen_range(0.0f64..1.0).powf(1.0 / 3.0);
                    let mut point: Vec<f64> = self
                        .center
                        .iter()
                        .zip(dir.iter())
                        .map(|(c, d)| c + r * d)
                        .collect();
                    point.iter_mut().for_each(|v| *v = v.clamp(0.0, 1.0));
                    candidates.push(point);
                }
            }
            Region::Line { direction } => {
                for i in 0..n {
                    // Evenly spaced offsets in [-1, 1], covering the full intersection of
                    // the line with the unit cube (clamped).
                    let alpha = -1.0 + 2.0 * (i as f64 + 0.5) / n as f64;
                    let mut point: Vec<f64> = self
                        .center
                        .iter()
                        .zip(direction.iter())
                        .map(|(c, d)| c + alpha * d)
                        .collect();
                    point.iter_mut().for_each(|v| *v = v.clamp(0.0, 1.0));
                    candidates.push(point);
                }
            }
        }
        candidates
    }

    /// Whether a (normalized) point lies on the boundary shell of the region — used by the
    /// ε-greedy exploration step, which prefers uncertain boundary points to expand the
    /// safety set.
    pub fn is_boundary(&self, point: &[f64]) -> bool {
        match &self.region {
            Region::Hypercube { radius } => {
                let d = linalg::vecops::euclidean_distance(point, &self.center);
                d >= radius * 0.8
            }
            Region::Line { .. } => {
                let d = linalg::vecops::euclidean_distance(point, &self.center);
                d >= 0.4
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn subspace(dim: usize) -> Subspace {
        Subspace::new(vec![0.5; dim], SubspaceOptions::default())
    }

    fn random_direction() -> Vec<f64> {
        vec![1.0, 0.0, 0.0, 0.0]
    }

    #[test]
    fn starts_as_hypercube_with_initial_radius() {
        let s = subspace(4);
        assert_eq!(s.radius(), Some(SubspaceOptions::default().initial_radius));
        assert_eq!(s.center(), &[0.5; 4]);
    }

    #[test]
    fn radius_doubles_after_consecutive_successes() {
        let mut s = subspace(4);
        let r0 = s.radius().unwrap();
        for _ in 0..3 {
            s.record_outcome(true);
        }
        s.adapt(&mut random_direction, false);
        assert!((s.radius().unwrap() - 2.0 * r0).abs() < 1e-12);
    }

    #[test]
    fn radius_halves_after_consecutive_failures() {
        let mut s = subspace(4);
        let r0 = s.radius().unwrap();
        for _ in 0..3 {
            s.record_outcome(false);
        }
        s.adapt(&mut random_direction, false);
        assert!((s.radius().unwrap() - r0 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn radius_respects_bounds() {
        let mut s = subspace(3);
        for _ in 0..50 {
            for _ in 0..3 {
                s.record_outcome(true);
            }
            s.adapt(&mut random_direction, false);
        }
        assert!(s.radius().unwrap() <= SubspaceOptions::default().max_radius + 1e-12);
    }

    #[test]
    fn switches_to_line_when_no_safe_candidates_and_back() {
        let mut s = subspace(4);
        s.adapt(&mut random_direction, true);
        assert!(matches!(s.region(), Region::Line { .. }));
        // And back to a hypercube on the next forced switch.
        s.adapt(&mut random_direction, true);
        assert!(matches!(s.region(), Region::Hypercube { .. }));
    }

    #[test]
    fn switches_to_line_after_many_failures() {
        let mut s = subspace(4);
        for _ in 0..SubspaceOptions::default().switch_threshold {
            s.record_outcome(false);
            s.adapt(&mut random_direction, false);
        }
        assert!(matches!(s.region(), Region::Line { .. }));
    }

    #[test]
    fn line_direction_is_normalized_even_for_zero_oracle() {
        let mut s = subspace(4);
        let mut zero_oracle = || vec![0.0; 4];
        s.adapt(&mut zero_oracle, true);
        if let Region::Line { direction } = s.region() {
            assert!((linalg::vecops::norm(direction) - 1.0).abs() < 1e-9);
        } else {
            panic!("expected a line region");
        }
    }

    #[test]
    fn discretized_candidates_stay_in_unit_cube_and_region() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = subspace(6);
        let candidates = s.discretize(&mut rng);
        assert_eq!(candidates.len(), SubspaceOptions::default().candidates + 1);
        assert_eq!(candidates[0], s.center());
        let r = s.radius().unwrap();
        for c in &candidates {
            assert!(c.iter().all(|v| (0.0..=1.0).contains(v)));
            // Clamping can only reduce the distance to the centre, so the radius bound holds.
            assert!(linalg::vecops::euclidean_distance(c, s.center()) <= r + 1e-9);
        }
    }

    #[test]
    fn line_discretization_spans_both_directions() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = subspace(3);
        let mut oracle = || vec![1.0, 0.0, 0.0];
        s.adapt(&mut oracle, true);
        let candidates = s.discretize(&mut rng);
        let xs: Vec<f64> = candidates.iter().map(|c| c[0]).collect();
        assert!(xs.iter().cloned().fold(f64::INFINITY, f64::min) < 0.2);
        assert!(xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max) > 0.8);
        // Off-direction coordinates stay at the centre.
        assert!(candidates.iter().all(|c| (c[1] - 0.5).abs() < 1e-9));
    }

    #[test]
    fn recenter_moves_the_subspace() {
        let mut s = subspace(3);
        s.recenter(vec![0.9, 0.1, 0.4]);
        assert_eq!(s.center(), &[0.9, 0.1, 0.4]);
    }

    #[test]
    fn boundary_detection_for_hypercube() {
        let s = subspace(2);
        let r = s.radius().unwrap();
        assert!(!s.is_boundary(&[0.5, 0.5]));
        assert!(s.is_boundary(&[0.5 + r * 0.95, 0.5]));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn prop_candidates_always_valid(
                center in proptest::collection::vec(0.0f64..1.0, 5),
                seed in 0u64..1000,
                outcomes in proptest::collection::vec(proptest::bool::ANY, 0..12),
            ) {
                let mut s = Subspace::new(center, SubspaceOptions { candidates: 40, ..Default::default() });
                let mut oracle = || vec![0.3, -0.2, 0.1, 0.05, -0.4];
                for o in outcomes {
                    s.record_outcome(o);
                    s.adapt(&mut oracle, false);
                }
                let mut rng = StdRng::seed_from_u64(seed);
                for c in s.discretize(&mut rng) {
                    prop_assert_eq!(c.len(), 5);
                    prop_assert!(c.iter().all(|v| (0.0..=1.0).contains(v)));
                }
                if let Some(r) = s.radius() {
                    prop_assert!(r >= SubspaceOptions::default().min_radius - 1e-12);
                    prop_assert!(r <= SubspaceOptions::default().max_radius + 1e-12);
                }
            }
        }
    }
}
