//! The OnlineTune top-level loop (Algorithm 3).
//!
//! [`OnlineTune`] owns the clustering/model-selection state, the per-model subspaces, the
//! white-box rule engine and the bookkeeping that links a suggestion to the observation
//! that follows it. One tuning iteration is:
//!
//! ```text
//! let suggestion = tuner.suggest(&context, safety_threshold, clients);
//! // apply suggestion.config to the database, run one interval, measure `performance`
//! tuner.observe(&context, &suggestion.config, performance, Some(&metrics), performance >= safety_threshold)?;
//! ```
//!
//! All ablation variants evaluated in §7.3 (`w/o white`, `w/o black`, `w/o subspace`,
//! `w/o safe`, `w/o clustering`) are expressed through [`AblationFlags`].

use crate::candidate::{select_candidate, SelectionReason};
use crate::clustering::{ClusterManager, ClusterManagerState, ClusterOptions};
use crate::diagnostics::{IterationDiagnostics, StageTimings};
use crate::safety::{assess_candidates_with_scratch, SafetyOptions};
use crate::subspace::{Subspace, SubspaceOptions};
use crate::whitebox::{RuleContext, RuleEngine, RuleStateSnapshot};
use gp::acquisition::ucb_beta;
use gp::contextual::ContextObservation;
use mlkit::importance::{knob_importance, top_k_knobs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simdb::{Configuration, HardwareSpec, InternalMetrics, KnobCatalogue};
use std::time::Instant;
use telemetry::{CounterId, EventKind, GaugeId, SpanId, TelemetryHandle};

/// Switches for the ablation study of §7.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AblationFlags {
    /// Use the white-box rule engine in the safety assessment.
    pub use_whitebox: bool,
    /// Use the GP lower-confidence-bound (black-box) safety check.
    pub use_blackbox: bool,
    /// Restrict optimization to the adaptive subspace (false = search the whole space).
    pub use_subspace: bool,
    /// Master switch for all safety machinery (false = vanilla contextual BO).
    pub use_safety: bool,
    /// Use clustering + SVM model selection (false = one global contextual GP).
    pub use_clustering: bool,
}

impl Default for AblationFlags {
    fn default() -> Self {
        AblationFlags {
            use_whitebox: true,
            use_blackbox: true,
            use_subspace: true,
            use_safety: true,
            use_clustering: true,
        }
    }
}

/// Options of the OnlineTune tuner.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct OnlineTuneOptions {
    /// Subspace adaptation options (Algorithm 2).
    pub subspace: SubspaceOptions,
    /// Clustering / model-selection options (Algorithm 1).
    pub cluster: ClusterOptions,
    /// Black-box safety options.
    pub safety: SafetyOptions,
    /// ε of the ε-greedy boundary-exploration policy (§6.3).
    pub epsilon: f64,
    /// Confidence parameter δ of the GP-UCB β schedule.
    pub beta_delta: f64,
    /// Conflicts before a white-box rule is ignored once (§6.2.2).
    pub whitebox_conflict_threshold: usize,
    /// Safe overrides before a white-box rule is relaxed (§6.2.2).
    pub whitebox_relax_threshold: usize,
    /// Maximum number of known-safe configurations retained for the cold-start fallback.
    pub known_safe_capacity: usize,
    /// Ablation switches.
    pub ablation: AblationFlags,
}

impl Default for OnlineTuneOptions {
    fn default() -> Self {
        OnlineTuneOptions {
            subspace: SubspaceOptions::default(),
            cluster: ClusterOptions::default(),
            safety: SafetyOptions::default(),
            epsilon: 0.1,
            beta_delta: 0.1,
            whitebox_conflict_threshold: 3,
            whitebox_relax_threshold: 3,
            known_safe_capacity: 256,
            ablation: AblationFlags::default(),
        }
    }
}

/// A configuration recommendation plus the diagnostics of the iteration that produced it.
#[derive(Debug, Clone)]
pub struct Suggestion {
    /// The recommended configuration in native units.
    pub config: Configuration,
    /// The same configuration as a normalized `[0, 1]^m` vector.
    pub normalized: Vec<f64>,
    /// What the tuner did this iteration.
    pub diagnostics: IterationDiagnostics,
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct Pending {
    model_id: usize,
    /// Native-unit knob values of the recommended configuration (sanitized), used to match
    /// the following `observe` call to this suggestion.
    config_values: Vec<f64>,
    overridden_rule: Option<usize>,
    fell_back: bool,
    /// Safety threshold (default performance) the suggestion was made against; used to
    /// express the observed performance as an improvement margin over the default so that
    /// "best configuration so far" stays meaningful when the workload itself drifts.
    threshold: f64,
}

/// The OnlineTune tuner.
pub struct OnlineTune {
    catalogue: KnobCatalogue,
    hardware: HardwareSpec,
    options: OnlineTuneOptions,
    clusters: ClusterManager,
    whitebox: RuleEngine,
    subspaces: Vec<Subspace>,
    /// Best `(normalized config, improvement over the default)` seen per model.
    best_per_model: Vec<Option<(Vec<f64>, f64)>>,
    initial_normalized: Vec<f64>,
    known_safe: Vec<Vec<f64>>,
    last_metrics: Option<InternalMetrics>,
    iteration: usize,
    rng: StdRng,
    pending: Option<Pending>,
    /// Reusable joint-vector buffers for the batched safety assessment (runtime-only
    /// scratch — never serialized, carries no tuner state).
    predict_scratch: Vec<Vec<f64>>,
    /// Observability sink (runtime-only, never serialized, no-op by default).
    /// Instrumentation is read-only with respect to tuning state: it draws no RNG
    /// values and feeds nothing back into suggestions, so replay is bit-identical with
    /// or without a sink installed.
    telemetry: TelemetryHandle,
}

impl OnlineTune {
    /// Creates a tuner.
    ///
    /// * `catalogue` — the knobs being tuned (the full 40-knob catalogue or a subset).
    /// * `hardware` — hardware of the target instance (consulted by white-box rules).
    /// * `context_dim` — dimensionality of the context vectors the featurizer produces.
    /// * `initial_safe_config` — the initial safety set (normally the DBA or vendor default).
    pub fn new(
        catalogue: KnobCatalogue,
        hardware: HardwareSpec,
        context_dim: usize,
        initial_safe_config: &Configuration,
        options: OnlineTuneOptions,
        seed: u64,
    ) -> Self {
        let config_dim = catalogue.len();
        let initial_normalized = initial_safe_config.normalized(&catalogue);
        let clusters = ClusterManager::new(config_dim, context_dim, options.cluster.clone());
        let whitebox = RuleEngine::with_default_rules();
        let subspaces = vec![Subspace::new(initial_normalized.clone(), options.subspace)];
        OnlineTune {
            catalogue,
            hardware,
            options,
            clusters,
            whitebox,
            subspaces,
            best_per_model: vec![None],
            known_safe: vec![initial_normalized.clone()],
            initial_normalized,
            last_metrics: None,
            iteration: 0,
            rng: StdRng::seed_from_u64(seed),
            pending: None,
            predict_scratch: Vec::new(),
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Installs a telemetry sink on the tuner and everything below it (cluster manager,
    /// per-cluster models, their GPs). Runtime-only: the sink is excluded from
    /// [`OnlineTune::snapshot`], and a restored tuner starts with the no-op sink until
    /// one is re-installed.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.clusters.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The installed telemetry sink (the no-op sink by default).
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// The knob catalogue this tuner operates over.
    pub fn catalogue(&self) -> &KnobCatalogue {
        &self.catalogue
    }

    /// Number of observations collected so far.
    pub fn observation_count(&self) -> usize {
        self.clusters.len()
    }

    /// Number of per-cluster models currently maintained.
    pub fn model_count(&self) -> usize {
        self.clusters.n_models()
    }

    /// Number of re-clusterings performed.
    pub fn recluster_count(&self) -> usize {
        self.clusters.recluster_count()
    }

    /// Observation counts held by each per-cluster model, in model-id order. Each entry
    /// is bounded by `ClusterOptions::max_observations_per_model` (the
    /// `ObservationBudget` contract the fleet fuzzer's bounded-memory property checks).
    pub fn model_observation_counts(&self) -> Vec<usize> {
        (0..self.clusters.n_models())
            .map(|id| self.clusters.model(id).len())
            .collect()
    }

    /// Access to the white-box rule engine (for inspection in experiments).
    pub fn whitebox(&self) -> &RuleEngine {
        &self.whitebox
    }

    /// The hardware the tuner currently assumes for its white-box rules.
    pub fn hardware(&self) -> &HardwareSpec {
        &self.hardware
    }

    /// Re-grants the worker budget of the periodic hyper-parameter optimization (see
    /// [`ClusterOptions::hyperopt_workers`](crate::clustering::ClusterOptions::hyperopt_workers)).
    /// Runtime-only — hyperopt results are worker-count independent bit for bit, so
    /// this affects wall-clock time, never recommendations or replay. The fleet
    /// service calls it at admission and after snapshot restore to keep the combined
    /// parallelism budget valid on the *current* machine.
    pub fn set_hyperopt_workers(&mut self, workers: usize) {
        self.options.cluster.hyperopt_workers = workers;
        self.clusters.set_hyperopt_workers(workers);
    }

    /// Re-grants the intra-op worker budget of every cluster model (see
    /// [`ClusterOptions::intraop_workers`](crate::clustering::ClusterOptions::intraop_workers)):
    /// threads inside one refit's Cholesky factorization and one suggest sweep's
    /// batched prediction. Runtime-only and bit-identical at every grant, exactly like
    /// [`OnlineTune::set_hyperopt_workers`]; the fleet service calls both at admission
    /// and after snapshot restore.
    pub fn set_intraop_workers(&mut self, workers: usize) {
        self.options.cluster.intraop_workers = workers;
        self.clusters.set_intraop_workers(workers);
    }

    /// Suppresses (or re-enables) the periodic hyper-parameter refit of every cluster
    /// model — the serving layer's degraded tiers shed the O(n³) step of the observe
    /// path this way (see
    /// [`ClusterManager::set_hyperopt_suppressed`](crate::clustering::ClusterManager::set_hyperopt_suppressed)).
    /// Runtime-only: never serialized; restore paths re-apply it from the tenant's
    /// degradation tier.
    pub fn set_hyperopt_suppressed(&mut self, suppressed: bool) {
        self.clusters.set_hyperopt_suppressed(suppressed);
    }

    /// Updates the hardware the white-box rules reason about (a mid-session instance
    /// resize). The black-box models are *not* reset: performance shifts caused by the
    /// resize surface as ordinary observations, and a sustained context-distribution
    /// shift triggers re-clustering through the normal NMI check. The hardware is part of
    /// the tuner snapshot, so a restored session continues with the resized value.
    pub fn set_hardware(&mut self, hardware: HardwareSpec) {
        self.hardware = hardware;
    }

    fn sync_model_structures(&mut self) {
        let n = self.clusters.n_models();
        while self.subspaces.len() < n {
            // New clusters start from the initial safe configuration with a zero improvement
            // margin; their subspace then migrates as better configurations are observed
            // under their contexts.
            self.subspaces.push(Subspace::new(
                self.initial_normalized.clone(),
                self.options.subspace,
            ));
            self.best_per_model
                .push(Some((self.initial_normalized.clone(), 0.0)));
        }
        self.subspaces.truncate(n.max(1));
        self.best_per_model.truncate(n.max(1));
    }

    fn direction_oracle(&mut self, model_id: usize) -> Vec<f64> {
        let dim = self.catalogue.len();
        let observations = self.clusters.model(model_id).observations();
        let use_important = observations.len() >= 10 && self.rng.gen_bool(0.5);
        if use_important {
            let configs: Vec<Vec<f64>> = observations.iter().map(|o| o.config.clone()).collect();
            let perfs: Vec<f64> = observations.iter().map(|o| o.performance).collect();
            let importance = knob_importance(&configs, &perfs, 4);
            let top = top_k_knobs(&importance, 5);
            if let Some(&knob) = top.first() {
                // Axis-aligned direction on one of the top-5 important knobs (exploitation).
                let pick = top[self.rng.gen_range(0..top.len().min(5))];
                let mut d = vec![0.0; dim];
                d[pick.min(dim - 1)] = 1.0;
                let _ = knob;
                return d;
            }
        }
        // Random direction (exploration).
        (0..dim).map(|_| self.rng.gen_range(-1.0..1.0)).collect()
    }

    /// Produces a configuration recommendation for the observed context.
    ///
    /// * `context` — context feature vector of the beginning of this interval.
    /// * `safety_threshold` — the performance of the default configuration under this
    ///   context (higher-is-better units; negate latencies before calling).
    /// * `clients` — number of client connections of the current workload (used by the
    ///   white-box rules).
    pub fn suggest(
        &mut self,
        context: &[f64],
        safety_threshold: f64,
        clients: usize,
    ) -> Suggestion {
        let span = self.telemetry.begin_span();
        self.iteration += 1;
        let mut diagnostics = IterationDiagnostics {
            iteration: self.iteration,
            ..Default::default()
        };

        // ── Model selection ────────────────────────────────────────────────────────────
        let t = Instant::now();
        let model_id = if self.options.ablation.use_clustering {
            self.clusters.select_model(context)
        } else {
            0
        };
        self.sync_model_structures();
        let model_id = model_id.min(self.subspaces.len() - 1);
        diagnostics.selected_model = model_id;
        diagnostics.n_models = self.clusters.n_models();
        diagnostics.recluster_count = self.clusters.recluster_count();
        let mut timings = StageTimings {
            model_selection_s: t.elapsed().as_secs_f64(),
            ..Default::default()
        };

        // ── Subspace adaptation ────────────────────────────────────────────────────────
        let t = Instant::now();
        let no_safe_last_time = self.pending.as_ref().map(|p| p.fell_back).unwrap_or(false);
        let candidates: Vec<Vec<f64>> = if self.options.ablation.use_subspace {
            let mut oracle_dirs: Vec<Vec<f64>> = Vec::new();
            // Pre-generate a direction in case the subspace switches to a line region (keeps
            // the borrow checker happy: the oracle closure must not borrow `self`).
            oracle_dirs.push(self.direction_oracle(model_id));
            let subspace = &mut self.subspaces[model_id];
            let mut oracle = || oracle_dirs.pop().unwrap_or_else(|| vec![1.0]);
            subspace.adapt(&mut oracle, no_safe_last_time);
            subspace.discretize(&mut self.rng)
        } else {
            // Ablation: optimize over the whole configuration space.
            let n = self.options.subspace.candidates;
            let dim = self.catalogue.len();
            let mut c = Vec::with_capacity(n + 1);
            c.push(self.subspaces[model_id].center().to_vec());
            for _ in 0..n {
                c.push((0..dim).map(|_| self.rng.gen_range(0.0..1.0)).collect());
            }
            c
        };
        diagnostics.candidates_total = candidates.len();
        let subspace_radius = self.subspaces[model_id].radius();
        diagnostics.subspace_radius = subspace_radius;
        diagnostics.subspace_is_line = subspace_radius.is_none();
        diagnostics.center_distance_from_default = linalg::vecops::euclidean_distance(
            self.subspaces[model_id].center(),
            &self.initial_normalized,
        );
        timings.subspace_adaptation_s = t.elapsed().as_secs_f64();

        // ── Safety assessment ──────────────────────────────────────────────────────────
        let t = Instant::now();
        let beta = ucb_beta(
            self.iteration,
            self.catalogue.len() + context.len(),
            self.options.beta_delta,
        );
        let effective_threshold =
            if self.options.ablation.use_safety && self.options.ablation.use_blackbox {
                safety_threshold
            } else {
                f64::NEG_INFINITY
            };
        // The whole candidate sweep is one batched posterior call: one cross-kernel
        // matrix (shared context column), one multi-RHS triangular solve. Assessments
        // are bit-identical to the scalar per-candidate path.
        let assessments = assess_candidates_with_scratch(
            self.clusters.model(model_id),
            context,
            &candidates,
            effective_threshold,
            beta,
            &self.known_safe,
            &self.options.safety,
            &mut self.predict_scratch,
        );
        diagnostics.blackbox_rejections = assessments.iter().filter(|a| !a.black_safe).count();

        let use_whitebox = self.options.ablation.use_safety && self.options.ablation.use_whitebox;
        let metrics_ref = self.last_metrics.clone();
        let rule_ctx = RuleContext {
            catalogue: &self.catalogue,
            hardware: &self.hardware,
            clients,
            metrics: metrics_ref.as_ref(),
        };
        let mut white_safe: Vec<bool> = vec![true; candidates.len()];
        if use_whitebox {
            // One Configuration reused across the rule sweep: `set_from_normalized`
            // overwrites it in place, so the loop performs no per-candidate allocation.
            let mut cfg_scratch: Option<Configuration> = None;
            for (flag, c) in white_safe.iter_mut().zip(candidates.iter()) {
                let cfg = match cfg_scratch.as_mut() {
                    Some(cfg) => {
                        cfg.set_from_normalized(&self.catalogue, c);
                        &*cfg
                    }
                    None => {
                        cfg_scratch = Some(Configuration::from_normalized(&self.catalogue, c));
                        cfg_scratch.as_ref().expect("just inserted")
                    }
                };
                *flag = self.whitebox.passes(cfg, &rule_ctx);
            }
        }
        diagnostics.whitebox_rejections = white_safe.iter().filter(|s| !**s).count();

        // Decision-conflict handling (§6.2.2): if the black box's favourite candidate is
        // vetoed only by the white box, count a conflict; after enough conflicts ignore the
        // single offending rule for this recommendation.
        let mut overridden_rule: Option<usize> = None;
        if use_whitebox {
            let favourite = assessments
                .iter()
                .enumerate()
                .filter(|(_, a)| a.black_safe)
                .max_by(|(_, a), (_, b)| {
                    a.ucb
                        .partial_cmp(&b.ucb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i);
            if let Some(fav) = favourite {
                if !white_safe[fav] {
                    let cfg = Configuration::from_normalized(&self.catalogue, &candidates[fav]);
                    let violations = self.whitebox.violations(&cfg, &rule_ctx);
                    if violations.len() == 1 {
                        let rule = violations[0];
                        if self.whitebox.note_conflict(rule) {
                            white_safe[fav] = true;
                            overridden_rule = Some(rule);
                            diagnostics.overridden_rule =
                                Some(self.whitebox.rule_names()[rule].to_string());
                        }
                    }
                }
            }
        }
        diagnostics.safety_set_size = assessments
            .iter()
            .zip(white_safe.iter())
            .filter(|(a, w)| a.black_safe && **w)
            .count();
        timings.safety_assessment_s = t.elapsed().as_secs_f64();

        // ── Candidate selection ────────────────────────────────────────────────────────
        let t = Instant::now();
        let selection = select_candidate(
            &candidates,
            &assessments,
            &white_safe,
            &self.subspaces[model_id],
            if self.options.ablation.use_safety {
                self.options.epsilon
            } else {
                0.0
            },
            &mut self.rng,
        );
        timings.candidate_selection_s = t.elapsed().as_secs_f64();
        diagnostics.fell_back_to_center = selection.reason == SelectionReason::FallbackToCenter;
        diagnostics.explored_boundary = selection.reason == SelectionReason::BoundaryExploration;

        let normalized = candidates[selection.index].clone();
        diagnostics.recommendation_distance_from_default =
            linalg::vecops::euclidean_distance(&normalized, &self.initial_normalized);
        diagnostics.timings = timings;

        let config = Configuration::from_normalized(&self.catalogue, &normalized);
        self.pending = Some(Pending {
            model_id,
            config_values: config.values().to_vec(),
            overridden_rule,
            fell_back: diagnostics.fell_back_to_center,
            threshold: safety_threshold,
        });

        // Observability only (black-box rejections are counted inside the safety
        // assessment itself): nothing below feeds back into the suggestion.
        self.telemetry.add(
            CounterId::WhiteboxRejections,
            diagnostics.whitebox_rejections as u64,
        );
        self.telemetry
            .set_gauge(GaugeId::SafetySetSize, diagnostics.safety_set_size as f64);
        if diagnostics.fell_back_to_center {
            self.telemetry.incr(CounterId::SafetyFallbacks);
            if self.telemetry.is_enabled() {
                self.telemetry.event(
                    EventKind::SafetyFallback,
                    "tuner",
                    &format!(
                        "iteration={} candidates={} blackbox_rejections={} whitebox_rejections={}",
                        self.iteration,
                        diagnostics.candidates_total,
                        diagnostics.blackbox_rejections,
                        diagnostics.whitebox_rejections
                    ),
                );
            }
        }
        if diagnostics.explored_boundary {
            self.telemetry.incr(CounterId::BoundaryExplorations);
        }
        self.telemetry.end_span(SpanId::Suggest, span);

        Suggestion {
            config,
            normalized,
            diagnostics,
        }
    }

    /// Feeds back the measured performance of a configuration under a context.
    ///
    /// `performance` must be in higher-is-better units (negate latency objectives);
    /// `was_safe` states whether the measured performance met the safety threshold.
    ///
    /// Non-finite feeds (NaN/±Inf performance or context — e.g. a corrupted measurement
    /// scrape) are rejected with a typed [`ObserveError`] *before* any tuner state is
    /// touched: the pending suggestion, the cluster models and the safety set are all
    /// left exactly as they were, so the caller can treat the rejection as a failed
    /// measurement and retry.
    ///
    /// This is the hot path of online tuning: the selected cluster model absorbs the
    /// observation incrementally in `O(t²)` (Cholesky extension), falling back to a full
    /// `O(t³)` refit only on periodic hyper-parameter re-optimization, re-clustering, or
    /// an observation-budget eviction.
    pub fn observe(
        &mut self,
        context: &[f64],
        config: &Configuration,
        performance: f64,
        metrics: Option<&InternalMetrics>,
        was_safe: bool,
    ) -> Result<(), ObserveError> {
        if !performance.is_finite() {
            return Err(ObserveError::NonFinitePerformance { value: performance });
        }
        if let Some(index) = context.iter().position(|v| !v.is_finite()) {
            return Err(ObserveError::NonFiniteContext { index });
        }
        let span = self.telemetry.begin_span();
        let normalized = config.normalized(&self.catalogue);
        let pending = self.pending.take();
        let model_id = match &pending {
            Some(p) if p.config_values == config.values() => p.model_id,
            _ => {
                if self.options.ablation.use_clustering {
                    self.clusters.select_model(context)
                } else {
                    0
                }
            }
        };

        // Model update (Algorithm 3, lines 11–13).
        self.clusters.add_observation(
            ContextObservation {
                context: context.to_vec(),
                config: normalized.clone(),
                performance,
            },
            &mut self.rng,
        );
        if self.options.ablation.use_clustering && self.clusters.maybe_recluster(&mut self.rng) {
            self.sync_model_structures();
        }
        self.sync_model_structures();
        let model_id = model_id.min(self.best_per_model.len() - 1);

        // Success/failure accounting + subspace recentring. The quality of a configuration
        // is measured as its improvement over the default under the *same* context, so that
        // a "best" found during an easy workload phase does not freeze the subspace when the
        // workload drifts.
        let improvement = match &pending {
            Some(p) if p.config_values == config.values() => performance - p.threshold,
            _ => 0.0,
        };
        let improved = match &self.best_per_model[model_id] {
            Some((_, best)) => improvement > *best,
            None => improvement >= 0.0,
        };
        if improved && was_safe {
            self.best_per_model[model_id] = Some((normalized.clone(), improvement));
            self.subspaces[model_id].recenter(normalized.clone());
        }
        self.subspaces[model_id].record_outcome(improved);

        // White-box relaxation bookkeeping.
        if let Some(Pending {
            overridden_rule: Some(rule),
            ..
        }) = pending
        {
            self.whitebox.note_override_outcome(rule, was_safe);
        }

        if was_safe {
            self.known_safe.push(normalized);
            if self.known_safe.len() > self.options.known_safe_capacity {
                let excess = self.known_safe.len() - self.options.known_safe_capacity;
                self.known_safe.drain(0..excess);
            }
        }
        if let Some(m) = metrics {
            self.last_metrics = Some(m.clone());
        }
        self.telemetry.end_span(SpanId::Observe, span);
        Ok(())
    }
}

/// A rejected observation at the [`OnlineTune::observe`] boundary. The tuner state is
/// untouched when one of these is returned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObserveError {
    /// The measured performance is NaN or infinite (e.g. a corrupted scrape).
    NonFinitePerformance {
        /// The offending value.
        value: f64,
    },
    /// A context feature is NaN or infinite.
    NonFiniteContext {
        /// Index of the offending context coordinate.
        index: usize,
    },
}

impl std::fmt::Display for ObserveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObserveError::NonFinitePerformance { value } => {
                write!(f, "observed performance {value} is not finite")
            }
            ObserveError::NonFiniteContext { index } => {
                write!(f, "context feature {index} is not finite")
            }
        }
    }
}

impl std::error::Error for ObserveError {}

/// Complete serializable state of an [`OnlineTune`] session.
///
/// Produced by [`OnlineTune::snapshot`] and consumed by [`OnlineTune::restore`]. Every
/// source of tuner behaviour is captured — observations, per-model hyper-parameters,
/// subspaces, safety sets, white-box relaxation counters, the RNG stream position and the
/// pending suggestion — so a restored session continues bit-identically to one that was
/// never interrupted. The knob catalogue is stored by name and rebuilt from the full
/// MySQL 5.7 catalogue on restore.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct OnlineTuneState {
    /// Names of the tuned knobs, in catalogue order.
    pub knob_names: Vec<String>,
    /// Hardware of the target instance.
    pub hardware: HardwareSpec,
    /// Tuner options.
    pub options: OnlineTuneOptions,
    /// Clustering / model-selection state.
    pub clusters: ClusterManagerState,
    /// White-box rule conflict/relaxation state.
    pub whitebox: Vec<RuleStateSnapshot>,
    /// Per-model subspaces.
    pub subspaces: Vec<Subspace>,
    /// Best `(normalized config, improvement)` per model.
    pub best_per_model: Vec<Option<(Vec<f64>, f64)>>,
    /// Normalized initial safe configuration.
    pub initial_normalized: Vec<f64>,
    /// Known-safe configurations (normalized).
    pub known_safe: Vec<Vec<f64>>,
    /// Most recent internal metrics.
    pub last_metrics: Option<InternalMetrics>,
    /// Iterations performed so far.
    pub iteration: usize,
    /// RNG state.
    pub rng: StdRng,
    pending: Option<Pending>,
}

impl OnlineTune {
    /// Exports the complete session state for snapshots (see [`OnlineTuneState`]).
    pub fn snapshot(&self) -> OnlineTuneState {
        OnlineTuneState {
            knob_names: self
                .catalogue
                .knobs()
                .iter()
                .map(|k| k.name.to_string())
                .collect(),
            hardware: self.hardware,
            options: self.options.clone(),
            clusters: self.clusters.export_state(),
            whitebox: self.whitebox.export_states(),
            subspaces: self.subspaces.clone(),
            best_per_model: self.best_per_model.clone(),
            initial_normalized: self.initial_normalized.clone(),
            known_safe: self.known_safe.clone(),
            last_metrics: self.last_metrics.clone(),
            iteration: self.iteration,
            rng: self.rng.clone(),
            pending: self.pending.clone(),
        }
    }

    /// Rebuilds a tuner from a snapshot. The restored tuner continues the session
    /// bit-identically: same recommendations, same model updates, same RNG stream.
    ///
    /// Fails when the snapshot references a knob that does not exist in the full MySQL 5.7
    /// catalogue (snapshots only store knob names, not full definitions).
    pub fn restore(state: OnlineTuneState) -> Result<Self, String> {
        let full = KnobCatalogue::mysql57();
        let full_names: Vec<&str> = full.knobs().iter().map(|k| k.name).collect();
        let wanted: Vec<&str> = state.knob_names.iter().map(|s| s.as_str()).collect();
        for name in &wanted {
            if !full_names.contains(name) {
                return Err(format!("snapshot references unknown knob `{name}`"));
            }
        }
        let catalogue = if wanted == full_names {
            full
        } else {
            full.subset(&wanted)
        };
        let mut whitebox = RuleEngine::with_default_rules();
        whitebox.restore_states(&state.whitebox);
        let clusters = ClusterManager::restore(state.clusters, state.options.cluster.clone());
        Ok(OnlineTune {
            catalogue,
            hardware: state.hardware,
            options: state.options,
            clusters,
            whitebox,
            subspaces: state.subspaces,
            best_per_model: state.best_per_model,
            initial_normalized: state.initial_normalized,
            known_safe: state.known_safe,
            last_metrics: state.last_metrics,
            iteration: state.iteration,
            rng: state.rng,
            pending: state.pending,
            predict_scratch: Vec::new(),
            telemetry: TelemetryHandle::disabled(),
        })
    }

    /// Seeds the safety set with externally known-safe configurations (normalized), e.g.
    /// from a fleet-level knowledge base. Duplicates are skipped; the capacity bound of
    /// [`OnlineTuneOptions::known_safe_capacity`] is enforced.
    pub fn extend_known_safe<I: IntoIterator<Item = Vec<f64>>>(&mut self, configs: I) {
        let dim = self.catalogue.len();
        for cfg in configs {
            if cfg.len() != dim || self.known_safe.contains(&cfg) {
                continue;
            }
            self.known_safe.push(cfg);
        }
        if self.known_safe.len() > self.options.known_safe_capacity {
            let excess = self.known_safe.len() - self.options.known_safe_capacity;
            self.known_safe.drain(0..excess);
        }
    }

    /// Absorbs observations transferred from another tuning session (cross-tenant
    /// warm start). The observations join the repository and the per-cluster models as if
    /// they had been collected locally, generalizing the paper's cold-start fallback.
    pub fn absorb_observations(&mut self, observations: &[ContextObservation]) {
        for obs in observations {
            if obs.config.len() != self.catalogue.len() {
                continue;
            }
            self.clusters.add_observation(obs.clone(), &mut self.rng);
        }
        if self.options.ablation.use_clustering {
            self.clusters.maybe_recluster(&mut self.rng);
        }
        self.sync_model_structures();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdb::{SimDatabase, WorkloadSpec};

    fn context_for(read_ratio: f64) -> Vec<f64> {
        vec![read_ratio, 1.0 - read_ratio, 0.5]
    }

    fn make_tuner(ablation: AblationFlags) -> (OnlineTune, KnobCatalogue) {
        let catalogue = KnobCatalogue::mysql57();
        let initial = Configuration::dba_default(&catalogue);
        let options = OnlineTuneOptions {
            ablation,
            subspace: SubspaceOptions {
                candidates: 60,
                ..Default::default()
            },
            ..Default::default()
        };
        let tuner = OnlineTune::new(
            catalogue.clone(),
            HardwareSpec::default(),
            3,
            &initial,
            options,
            42,
        );
        (tuner, catalogue)
    }

    #[test]
    fn first_suggestion_stays_near_the_initial_safe_configuration() {
        let (mut tuner, _cat) = make_tuner(AblationFlags::default());
        let suggestion = tuner.suggest(&context_for(0.5), 100.0, 32);
        // With an empty model, only candidates near the initial safety set are admitted, so
        // the recommendation must be close to the DBA default.
        assert!(
            suggestion.diagnostics.recommendation_distance_from_default
                <= SafetyOptions::default().cold_start_radius + 1e-9,
            "distance = {}",
            suggestion.diagnostics.recommendation_distance_from_default
        );
        assert_eq!(suggestion.diagnostics.iteration, 1);
        assert!(suggestion.diagnostics.candidates_total > 0);
    }

    #[test]
    fn suggest_observe_loop_improves_on_the_simulated_database() {
        let (mut tuner, cat) = make_tuner(AblationFlags::default());
        let mut db = SimDatabase::new(7);
        db.set_deterministic(true);
        let workload = WorkloadSpec::synthetic_oltp();
        let default_cfg = Configuration::dba_default(&cat);
        let default_perf = db.peek(&default_cfg, &workload).throughput_tps;

        let context = context_for(0.55);
        let mut best = default_perf;
        let mut unsafe_count = 0;
        for _ in 0..30 {
            let suggestion = tuner.suggest(&context, default_perf, workload.clients);
            db.apply_config(&suggestion.config);
            let eval = db.run_interval(&workload, 180.0);
            let perf = eval.outcome.throughput_tps;
            if perf < default_perf * 0.999 {
                unsafe_count += 1;
            }
            best = best.max(perf);
            tuner
                .observe(
                    &context,
                    &suggestion.config,
                    perf,
                    Some(&eval.metrics),
                    perf >= default_perf,
                )
                .unwrap();
        }
        assert!(tuner.observation_count() == 30);
        assert!(
            best >= default_perf,
            "tuning must not lose ground: best {best} vs default {default_perf}"
        );
        // The safe tuner should only rarely go below the default on this easy workload (the
        // measured default is noiseless here, so mild noise dips count as "unsafe").
        assert!(unsafe_count <= 6, "unsafe recommendations: {unsafe_count}");
        assert_eq!(db.failures(), 0);
    }

    #[test]
    fn vanilla_contextual_bo_explores_far_from_the_default() {
        let flags = AblationFlags {
            use_safety: false,
            use_whitebox: false,
            use_blackbox: false,
            use_subspace: false,
            use_clustering: true,
        };
        let (mut tuner, _cat) = make_tuner(flags);
        let context = context_for(0.5);
        let mut max_distance: f64 = 0.0;
        for i in 0..5 {
            let suggestion = tuner.suggest(&context, 100.0, 32);
            max_distance =
                max_distance.max(suggestion.diagnostics.recommendation_distance_from_default);
            tuner
                .observe(&context, &suggestion.config, 50.0 + i as f64, None, true)
                .unwrap();
        }
        // Without safety or subspace restriction the tuner samples the whole space, which is
        // far from the default in a 40-dimensional cube.
        assert!(max_distance > 1.0, "max distance = {max_distance}");
    }

    #[test]
    fn whitebox_blocks_memory_overcommit_candidates() {
        let (mut tuner, _cat) = make_tuner(AblationFlags::default());
        let context = context_for(0.4);
        // Feed a few observations so the black box trusts a region, then check that the
        // safety set never contains a configuration violating the memory-budget rule.
        for i in 0..10 {
            let suggestion = tuner.suggest(&context, 10.0, 32);
            let cfg = Configuration::from_normalized(tuner.catalogue(), &suggestion.normalized);
            let rule_ctx = RuleContext {
                catalogue: tuner.catalogue(),
                hardware: &HardwareSpec::default(),
                clients: 32,
                metrics: None,
            };
            assert!(
                tuner.whitebox().passes(&cfg, &rule_ctx)
                    || suggestion.diagnostics.overridden_rule.is_some(),
                "iteration {i} recommended a rule-violating configuration without an override"
            );
            tuner
                .observe(&context, &suggestion.config, 20.0 + i as f64, None, true)
                .unwrap();
        }
    }

    #[test]
    fn observing_a_better_configuration_moves_the_subspace_centre() {
        let (mut tuner, cat) = make_tuner(AblationFlags::default());
        let context = context_for(0.5);
        let default = Configuration::dba_default(&cat);
        tuner
            .observe(&context, &default, 100.0, None, true)
            .unwrap();
        // Recommend, then report a large improvement over the threshold for the recommended
        // configuration: the subspace centre must move onto it.
        let first = tuner.suggest(&context, 100.0, 32);
        tuner
            .observe(&context, &first.config, 200.0, None, true)
            .unwrap();
        let second = tuner.suggest(&context, 100.0, 32);
        let expected = linalg::vecops::euclidean_distance(
            &first.config.normalized(&cat),
            &default.normalized(&cat),
        );
        assert!((second.diagnostics.center_distance_from_default - expected).abs() < 1e-9);
    }

    #[test]
    fn diagnostics_report_stage_timings() {
        let (mut tuner, _cat) = make_tuner(AblationFlags::default());
        let suggestion = tuner.suggest(&context_for(0.5), 0.0, 16);
        let t = &suggestion.diagnostics.timings;
        assert!(t.total_s() >= 0.0);
        assert!(t.safety_assessment_s >= 0.0);
        assert!(suggestion.diagnostics.candidates_total > 0);
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() {
        let (mut original, cat) = make_tuner(AblationFlags::default());
        let mut db = SimDatabase::new(3);
        let workload = WorkloadSpec::synthetic_oltp();
        let default_cfg = Configuration::dba_default(&cat);
        let default_perf = db.peek(&default_cfg, &workload).throughput_tps;
        let context = context_for(0.6);
        for _ in 0..8 {
            let s = original.suggest(&context, default_perf, workload.clients);
            db.apply_config(&s.config);
            let eval = db.run_interval(&workload, 180.0);
            let perf = eval.outcome.throughput_tps;
            original
                .observe(
                    &context,
                    &s.config,
                    perf,
                    Some(&eval.metrics),
                    perf >= default_perf,
                )
                .unwrap();
        }

        let json = serde_json::to_string(&original.snapshot()).unwrap();
        let state: OnlineTuneState = serde_json::from_str(&json).unwrap();
        let mut restored = OnlineTune::restore(state).unwrap();

        // Drive both tuners with the same inputs: every recommendation must be identical
        // down to the last bit, and so must the internal bookkeeping.
        for i in 0..8 {
            let a = original.suggest(&context, default_perf, workload.clients);
            let b = restored.suggest(&context, default_perf, workload.clients);
            assert_eq!(a.normalized, b.normalized, "diverged at iteration {i}");
            assert_eq!(a.config.values(), b.config.values());
            let perf = default_perf + i as f64;
            original
                .observe(&context, &a.config, perf, None, true)
                .unwrap();
            restored
                .observe(&context, &b.config, perf, None, true)
                .unwrap();
        }
        assert_eq!(original.observation_count(), restored.observation_count());
        assert_eq!(original.model_count(), restored.model_count());
    }

    #[test]
    fn warm_start_hooks_extend_safety_set_and_models() {
        let (mut tuner, _cat) = make_tuner(AblationFlags::default());
        let dim = tuner.catalogue().len();
        let transferred: Vec<ContextObservation> = (0..5)
            .map(|i| ContextObservation {
                context: context_for(0.5),
                config: vec![0.5 + 0.01 * i as f64; dim],
                performance: 100.0 + i as f64,
            })
            .collect();
        tuner.extend_known_safe(transferred.iter().map(|o| o.config.clone()));
        tuner.absorb_observations(&transferred);
        assert_eq!(tuner.observation_count(), 5);
        // Mismatched dimensions are skipped, not absorbed.
        tuner.absorb_observations(&[ContextObservation {
            context: context_for(0.5),
            config: vec![0.5; dim + 1],
            performance: 1.0,
        }]);
        assert_eq!(tuner.observation_count(), 5);
    }

    #[test]
    fn clustering_ablation_keeps_a_single_model() {
        let flags = AblationFlags {
            use_clustering: false,
            ..Default::default()
        };
        let (mut tuner, cat) = make_tuner(flags);
        let default = Configuration::dba_default(&cat);
        for i in 0..40 {
            let ctx = if i % 2 == 0 {
                context_for(0.9)
            } else {
                context_for(0.1)
            };
            tuner
                .observe(&ctx, &default, 100.0 + i as f64, None, true)
                .unwrap();
        }
        assert_eq!(tuner.model_count(), 1);
        assert_eq!(tuner.recluster_count(), 0);
    }
}
