//! White-box knowledge: MysqlTuner-style heuristic rules with conflict-driven relaxation
//! (§6.2.2).
//!
//! Domain heuristics can reject obviously bad configurations (memory overcommit, strangled
//! concurrency) that a young GP model cannot yet recognize — but heuristics do not learn,
//! and an over-eager rule can fence off the true optimum. OnlineTune therefore tracks, per
//! rule, how often the black-box recommendation *conflicts* with the rule; after enough
//! conflicts the rule is ignored for one recommendation, and if the controversial
//! configuration turns out to be safe often enough, the rule is *relaxed* (its threshold is
//! loosened).

use simdb::{Configuration, HardwareSpec, InternalMetrics, KnobCatalogue};

const MIB: f64 = 1024.0 * 1024.0;

/// Environmental information a rule may consult.
pub struct RuleContext<'a> {
    /// The knob catalogue the configuration is expressed over.
    pub catalogue: &'a KnobCatalogue,
    /// Hardware of the target instance.
    pub hardware: &'a HardwareSpec,
    /// Number of client connections the workload uses.
    pub clients: usize,
    /// Most recent internal metrics, when available.
    pub metrics: Option<&'a InternalMetrics>,
}

impl<'a> RuleContext<'a> {
    /// Reads a knob from the configuration, falling back to the full-catalogue DBA default
    /// when the knob is not part of the tuned subset.
    pub fn knob(&self, config: &Configuration, name: &str) -> f64 {
        if let Some(v) = config.get(self.catalogue, name) {
            return v;
        }
        let full = KnobCatalogue::mysql57();
        let idx = full.index_of(name).expect("known knob");
        full.knob(idx).dba_default
    }
}

/// A single white-box heuristic.
pub trait WhiteBoxRule: Send + Sync {
    /// Stable rule name used in diagnostics.
    fn name(&self) -> &'static str;

    /// Returns `true` when the configuration violates the rule at the given relaxation
    /// level (level 0 = strictest; each level loosens the threshold).
    fn violates(&self, config: &Configuration, ctx: &RuleContext<'_>, relax_level: u32) -> bool;
}

/// Rule 1: the sum of all memory consumers must fit in the instance's usable RAM.
pub struct MemoryBudgetRule;

impl WhiteBoxRule for MemoryBudgetRule {
    fn name(&self) -> &'static str {
        "memory_budget"
    }

    fn violates(&self, config: &Configuration, ctx: &RuleContext<'_>, relax_level: u32) -> bool {
        let per_conn = ctx.knob(config, "sort_buffer_size")
            + ctx.knob(config, "join_buffer_size")
            + ctx.knob(config, "read_buffer_size")
            + ctx.knob(config, "read_rnd_buffer_size")
            + ctx.knob(config, "binlog_cache_size");
        let active = (ctx.clients as f64).min(ctx.knob(config, "max_connections")) * 0.5;
        let tmp = ctx
            .knob(config, "tmp_table_size")
            .min(ctx.knob(config, "max_heap_table_size"));
        let total = ctx.knob(config, "innodb_buffer_pool_size")
            + ctx.knob(config, "key_buffer_size")
            + ctx.knob(config, "query_cache_size")
            + ctx.knob(config, "innodb_log_buffer_size")
            + 300.0 * MIB
            + per_conn * active
            + tmp * active * 0.4;
        let budget = ctx.hardware.usable_ram_bytes() * (1.0 + 0.04 * relax_level as f64);
        total > budget
    }
}

/// Rule 2: `innodb_thread_concurrency` must be 0 (unlimited) or at least half the vCPUs —
/// the paper's running example of a non-ordinal knob that the GP mishandles (§7.3.2).
pub struct ThreadConcurrencyRule;

impl WhiteBoxRule for ThreadConcurrencyRule {
    fn name(&self) -> &'static str {
        "thread_concurrency"
    }

    fn violates(&self, config: &Configuration, ctx: &RuleContext<'_>, relax_level: u32) -> bool {
        let tc = ctx.knob(config, "innodb_thread_concurrency");
        if tc < 0.5 {
            return false; // 0 = unlimited
        }
        let floor = (ctx.hardware.vcpus as f64 / 2.0 - relax_level as f64).max(1.0);
        tc < floor
    }
}

/// Rule 3: the buffer pool should not shrink below a fraction of RAM on a dedicated
/// instance (MysqlTuner's InnoDB advice). Relaxation lowers the fraction.
pub struct BufferPoolMinimumRule;

impl WhiteBoxRule for BufferPoolMinimumRule {
    fn name(&self) -> &'static str {
        "buffer_pool_minimum"
    }

    fn violates(&self, config: &Configuration, ctx: &RuleContext<'_>, relax_level: u32) -> bool {
        let fraction = (0.20 - 0.05 * relax_level as f64).max(0.02);
        ctx.knob(config, "innodb_buffer_pool_size") < ctx.hardware.usable_ram_bytes() * fraction
    }
}

/// Rule 4: per-connection sort/join buffers beyond 64 MiB are rarely useful and are a
/// memory-blowup hazard with many connections.
pub struct PerConnectionBufferRule;

impl WhiteBoxRule for PerConnectionBufferRule {
    fn name(&self) -> &'static str {
        "per_connection_buffers"
    }

    fn violates(&self, config: &Configuration, ctx: &RuleContext<'_>, relax_level: u32) -> bool {
        let cap = 64.0 * MIB * 2f64.powi(relax_level as i32);
        ctx.knob(config, "sort_buffer_size") > cap || ctx.knob(config, "join_buffer_size") > cap
    }
}

/// Rule 5: `max_connections` must accommodate the application's connection count.
pub struct MaxConnectionsRule;

impl WhiteBoxRule for MaxConnectionsRule {
    fn name(&self) -> &'static str {
        "max_connections"
    }

    fn violates(&self, config: &Configuration, ctx: &RuleContext<'_>, relax_level: u32) -> bool {
        let needed = ctx.clients as f64 / (1.0 + relax_level as f64 * 0.5);
        ctx.knob(config, "max_connections") < needed
    }
}

/// Rule 6: the query cache should stay off (or small) when the workload writes — it is a
/// well-known scalability trap in MySQL 5.7.
pub struct QueryCacheRule;

impl WhiteBoxRule for QueryCacheRule {
    fn name(&self) -> &'static str {
        "query_cache"
    }

    fn violates(&self, config: &Configuration, ctx: &RuleContext<'_>, relax_level: u32) -> bool {
        let writes = ctx.metrics.map(|m| m.writes_per_sec > 1.0).unwrap_or(true);
        let cache_on = ctx.knob(config, "query_cache_type") >= 0.5;
        let size_cap = 32.0 * MIB * (1 + relax_level) as f64;
        writes && cache_on && ctx.knob(config, "query_cache_size") > size_cap
    }
}

/// Rule 7: redo log must not be tiny when the workload writes (checkpoint storms).
pub struct RedoLogRule;

impl WhiteBoxRule for RedoLogRule {
    fn name(&self) -> &'static str {
        "redo_log_size"
    }

    fn violates(&self, config: &Configuration, ctx: &RuleContext<'_>, relax_level: u32) -> bool {
        let write_heavy = ctx
            .metrics
            .map(|m| m.writes_per_sec > 500.0)
            .unwrap_or(false);
        let floor = (256.0 - 64.0 * relax_level as f64).max(48.0) * MIB;
        write_heavy && ctx.knob(config, "innodb_log_file_size") < floor
    }
}

/// Rule 8: keep `innodb_max_dirty_pages_pct` out of the pathological low range.
pub struct DirtyPagesRule;

impl WhiteBoxRule for DirtyPagesRule {
    fn name(&self) -> &'static str {
        "dirty_pages_pct"
    }

    fn violates(&self, config: &Configuration, ctx: &RuleContext<'_>, relax_level: u32) -> bool {
        let floor = (10.0 - 3.0 * relax_level as f64).max(1.0);
        ctx.knob(config, "innodb_max_dirty_pages_pct") < floor
    }
}

/// Serializable snapshot of one rule's conflict/relaxation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RuleStateSnapshot {
    /// Conflicts counted toward the ignore threshold.
    pub conflicts: usize,
    /// Safe controversial outcomes counted toward relaxation.
    pub conflict_safe: usize,
    /// Current relaxation level (0 = strict).
    pub relax_level: u32,
}

/// Per-rule bookkeeping for the relaxation mechanism.
#[derive(Debug, Clone, Default)]
struct RuleState {
    conflicts: usize,
    conflict_safe: usize,
    relax_level: u32,
}

/// The white-box assistant: a set of rules plus the conflict/relaxation state machine.
pub struct RuleEngine {
    rules: Vec<Box<dyn WhiteBoxRule>>,
    states: Vec<RuleState>,
    /// Conflicts before a rule is ignored for one recommendation.
    conflict_threshold: usize,
    /// Safe outcomes of controversial configurations before the rule is relaxed.
    relax_threshold: usize,
}

impl RuleEngine {
    /// Creates the engine with the standard MysqlTuner-inspired rule set and the default
    /// thresholds (3 conflicts to ignore, 3 safe outcomes to relax).
    pub fn with_default_rules() -> Self {
        Self::new(
            vec![
                Box::new(MemoryBudgetRule),
                Box::new(ThreadConcurrencyRule),
                Box::new(BufferPoolMinimumRule),
                Box::new(PerConnectionBufferRule),
                Box::new(MaxConnectionsRule),
                Box::new(QueryCacheRule),
                Box::new(RedoLogRule),
                Box::new(DirtyPagesRule),
            ],
            3,
            3,
        )
    }

    /// Creates an engine from an explicit rule set.
    pub fn new(
        rules: Vec<Box<dyn WhiteBoxRule>>,
        conflict_threshold: usize,
        relax_threshold: usize,
    ) -> Self {
        let states = rules.iter().map(|_| RuleState::default()).collect();
        RuleEngine {
            rules,
            states,
            conflict_threshold,
            relax_threshold,
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the engine has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Names of all rules.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Exports the per-rule conflict/relaxation state for snapshots.
    pub fn export_states(&self) -> Vec<RuleStateSnapshot> {
        self.states
            .iter()
            .map(|st| RuleStateSnapshot {
                conflicts: st.conflicts,
                conflict_safe: st.conflict_safe,
                relax_level: st.relax_level,
            })
            .collect()
    }

    /// Restores per-rule state exported by [`RuleEngine::export_states`]. Extra entries are
    /// ignored and missing entries leave the default state, so the call is safe when the
    /// rule set evolved between snapshot and restore.
    pub fn restore_states(&mut self, states: &[RuleStateSnapshot]) {
        for (st, snap) in self.states.iter_mut().zip(states.iter()) {
            st.conflicts = snap.conflicts;
            st.conflict_safe = snap.conflict_safe;
            st.relax_level = snap.relax_level;
        }
    }

    /// Current relaxation level of a rule (0 = strict).
    pub fn relax_level(&self, rule: usize) -> u32 {
        self.states[rule].relax_level
    }

    /// Indices of the rules the configuration violates at their current relaxation level.
    pub fn violations(&self, config: &Configuration, ctx: &RuleContext<'_>) -> Vec<usize> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(i, rule)| rule.violates(config, ctx, self.states[*i].relax_level))
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether the configuration passes all rules.
    pub fn passes(&self, config: &Configuration, ctx: &RuleContext<'_>) -> bool {
        self.violations(config, ctx).is_empty()
    }

    /// Records that the black box wanted a configuration rejected *solely* by `rule`
    /// (a decision conflict). Returns `true` when the conflict counter has reached the
    /// threshold, meaning the rule should be ignored for this recommendation (the paper
    /// allows at most one rule to be ignored per recommendation).
    pub fn note_conflict(&mut self, rule: usize) -> bool {
        let state = &mut self.states[rule];
        state.conflicts += 1;
        if state.conflicts >= self.conflict_threshold {
            state.conflicts = 0;
            true
        } else {
            false
        }
    }

    /// Records the evaluated outcome of a controversial configuration that was applied while
    /// ignoring `rule`. Safe outcomes accumulate toward relaxation; an unsafe outcome resets
    /// the progress (the rule was right).
    pub fn note_override_outcome(&mut self, rule: usize, was_safe: bool) {
        let relax_threshold = self.relax_threshold;
        let state = &mut self.states[rule];
        if was_safe {
            state.conflict_safe += 1;
            if state.conflict_safe >= relax_threshold {
                state.conflict_safe = 0;
                state.relax_level += 1;
            }
        } else {
            state.conflict_safe = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn full_setup() -> (KnobCatalogue, HardwareSpec) {
        (KnobCatalogue::mysql57(), HardwareSpec::default())
    }

    fn ctx<'a>(cat: &'a KnobCatalogue, hw: &'a HardwareSpec) -> RuleContext<'a> {
        RuleContext {
            catalogue: cat,
            hardware: hw,
            clients: 32,
            metrics: None,
        }
    }

    #[test]
    fn dba_default_passes_all_rules() {
        let (cat, hw) = full_setup();
        let engine = RuleEngine::with_default_rules();
        let config = Configuration::dba_default(&cat);
        assert!(
            engine.passes(&config, &ctx(&cat, &hw)),
            "{:?}",
            engine
                .violations(&config, &ctx(&cat, &hw))
                .iter()
                .map(|&i| engine.rule_names()[i])
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn memory_overcommit_is_rejected() {
        let (cat, hw) = full_setup();
        let engine = RuleEngine::with_default_rules();
        let mut config = Configuration::dba_default(&cat);
        config.set(&cat, "innodb_buffer_pool_size", 15.0 * GIB);
        config.set(&cat, "sort_buffer_size", 256.0 * MIB);
        config.set(&cat, "join_buffer_size", 256.0 * MIB);
        let violations = engine.violations(&config, &ctx(&cat, &hw));
        let names: Vec<_> = violations.iter().map(|&i| engine.rule_names()[i]).collect();
        assert!(names.contains(&"memory_budget"), "{names:?}");
        assert!(names.contains(&"per_connection_buffers"));
    }

    #[test]
    fn strangling_thread_concurrency_is_rejected_but_zero_is_fine() {
        let (cat, hw) = full_setup();
        let engine = RuleEngine::with_default_rules();
        let mut config = Configuration::dba_default(&cat);
        config.set(&cat, "innodb_thread_concurrency", 1.0);
        assert!(!engine.passes(&config, &ctx(&cat, &hw)));
        config.set(&cat, "innodb_thread_concurrency", 0.0);
        assert!(engine.passes(&config, &ctx(&cat, &hw)));
        config.set(&cat, "innodb_thread_concurrency", 32.0);
        assert!(engine.passes(&config, &ctx(&cat, &hw)));
    }

    #[test]
    fn mysql_default_violates_the_buffer_pool_minimum() {
        let (cat, hw) = full_setup();
        let engine = RuleEngine::with_default_rules();
        let config = Configuration::vendor_default(&cat);
        let names: Vec<_> = engine
            .violations(&config, &ctx(&cat, &hw))
            .iter()
            .map(|&i| engine.rule_names()[i])
            .collect();
        assert!(names.contains(&"buffer_pool_minimum"));
    }

    #[test]
    fn conflict_counter_triggers_ignore_after_threshold() {
        let mut engine = RuleEngine::with_default_rules();
        assert!(!engine.note_conflict(0));
        assert!(!engine.note_conflict(0));
        assert!(engine.note_conflict(0));
        // Counter resets after an ignore.
        assert!(!engine.note_conflict(0));
    }

    #[test]
    fn repeated_safe_overrides_relax_the_rule() {
        let (cat, hw) = full_setup();
        let mut engine = RuleEngine::with_default_rules();
        let rule_idx = engine
            .rule_names()
            .iter()
            .position(|n| *n == "buffer_pool_minimum")
            .unwrap();
        // A pool a bit below 20% of usable RAM violates at level 0 but passes at level 1.
        let mut config = Configuration::dba_default(&cat);
        config.set(
            &cat,
            "innodb_buffer_pool_size",
            0.17 * hw.usable_ram_bytes(),
        );
        assert!(!engine.passes(&config, &ctx(&cat, &hw)));
        for _ in 0..3 {
            engine.note_override_outcome(rule_idx, true);
        }
        assert_eq!(engine.relax_level(rule_idx), 1);
        assert!(engine.passes(&config, &ctx(&cat, &hw)));
    }

    #[test]
    fn unsafe_override_resets_relaxation_progress() {
        let mut engine = RuleEngine::with_default_rules();
        engine.note_override_outcome(2, true);
        engine.note_override_outcome(2, true);
        engine.note_override_outcome(2, false);
        engine.note_override_outcome(2, true);
        engine.note_override_outcome(2, true);
        assert_eq!(engine.relax_level(2), 0);
        engine.note_override_outcome(2, true);
        assert_eq!(engine.relax_level(2), 1);
    }

    #[test]
    fn query_cache_rule_considers_write_activity() {
        let (cat, hw) = full_setup();
        let engine = RuleEngine::with_default_rules();
        let mut config = Configuration::dba_default(&cat);
        config.set(&cat, "query_cache_type", 1.0);
        config.set(&cat, "query_cache_size", 200.0 * MIB);
        // Without metrics we assume writes may happen → violation.
        assert!(!engine.passes(&config, &ctx(&cat, &hw)));
        // With metrics showing a read-only workload the rule stands down.
        let mut metrics = InternalMetrics::zeroed();
        metrics.writes_per_sec = 0.0;
        let ro_ctx = RuleContext {
            catalogue: &cat,
            hardware: &hw,
            clients: 32,
            metrics: Some(&metrics),
        };
        assert!(engine.passes(&config, &ro_ctx));
    }

    #[test]
    fn redo_log_rule_requires_write_evidence() {
        let (cat, hw) = full_setup();
        let engine = RuleEngine::with_default_rules();
        let mut config = Configuration::dba_default(&cat);
        config.set(&cat, "innodb_log_file_size", 48.0 * MIB);
        // No metrics → not write heavy → rule does not fire.
        assert!(engine.passes(&config, &ctx(&cat, &hw)));
        let mut metrics = InternalMetrics::zeroed();
        metrics.writes_per_sec = 5000.0;
        let heavy_ctx = RuleContext {
            catalogue: &cat,
            hardware: &hw,
            clients: 32,
            metrics: Some(&metrics),
        };
        assert!(!engine.passes(&config, &heavy_ctx));
    }

    #[test]
    fn subset_catalogue_uses_dba_fallbacks() {
        let hw = HardwareSpec::default();
        let full = KnobCatalogue::mysql57();
        let sub = full.subset(&["sort_buffer_size"]);
        let engine = RuleEngine::with_default_rules();
        let config = Configuration::from_values(&sub, vec![2.0 * MIB]);
        let sub_ctx = RuleContext {
            catalogue: &sub,
            hardware: &hw,
            clients: 32,
            metrics: None,
        };
        assert!(engine.passes(&config, &sub_ctx));
    }
}
