//! # onlinetune — dynamic and safe configuration tuning for cloud databases
//!
//! This crate is the reproduction of the paper's primary contribution: an *online* tuner
//! that adapts to changing workloads (contextual Bayesian optimization) while respecting a
//! safety constraint (never — or almost never — applying a configuration that performs
//! worse than the default).
//!
//! The top-level loop lives in [`tuner::OnlineTune`] and follows Algorithm 3 of the paper:
//!
//! 1. **Context featurization** happens outside this crate (see the `featurize` crate); the
//!    tuner receives the context vector `c_t`.
//! 2. **Model selection** ([`clustering`]) — DBSCAN clusters of contexts, one contextual GP
//!    per cluster, an SVM decision boundary for routing new contexts, and a normalized-
//!    mutual-information trigger for re-clustering (Algorithm 1).
//! 3. **Subspace adaptation** ([`subspace`]) — the optimization is restricted to a hypercube
//!    or line region centred on the best configuration found so far, expanded on successes
//!    and shrunk on failures (Algorithm 2).
//! 4. **Safety assessment** ([`safety`], [`whitebox`]) — candidates are kept only if the GP
//!    lower confidence bound clears the safety threshold (black box) and no MysqlTuner-style
//!    heuristic rule rejects them (white box, with conflict-driven rule relaxation).
//! 5. **Candidate selection** ([`candidate`]) — ε-greedy between the UCB maximizer and the
//!    most uncertain boundary point of the safety set.
//! 6. **Apply & evaluate** happens outside this crate (the `simdb` instance).
//! 7. **Model update** — [`tuner::OnlineTune::observe`] feeds the observation back. This
//!    is the hot path: the cluster's GP is updated *incrementally* in `O(t²)` per
//!    iteration (rank-1 Cholesky extension, see `gp::GaussianProcess::observe`) instead
//!    of an `O(t³)` refit; a from-scratch refit only happens when hyper-parameters are
//!    re-optimized, on re-clustering, or when the per-model observation budget evicts.
//!
//! Every stage records wall-clock timings in [`diagnostics::IterationDiagnostics`] so the
//! overhead experiment (Figure 8 / Table A1) can be regenerated; the
//! `bench --bin hotpath` binary tracks the incremental-vs-refit speedup
//! (`BENCH_hotpath.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidate;
pub mod clustering;
pub mod diagnostics;
pub mod safety;
pub mod subspace;
pub mod tuner;
pub mod whitebox;

pub use diagnostics::IterationDiagnostics;
pub use tuner::{AblationFlags, ObserveError, OnlineTune, OnlineTuneOptions, Suggestion};
pub use whitebox::{RuleEngine, WhiteBoxRule};
