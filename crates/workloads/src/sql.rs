//! SQL text synthesis for featurization.
//!
//! The context featurization of §5.1.1 operates on the plain SQL of the interval's queries.
//! The simulator does not execute SQL, but the featurizer still needs realistic query text
//! whose *shape* follows the workload mix, so each workload generator synthesizes SQL from
//! per-class templates over its own schema. Literal values vary with the iteration so that
//! the encoder sees the natural diversity of parameters without changing the query shape.

use crate::hash_noise;
use simdb::{QueryClass, WorkloadMix};

/// A template set: table names and per-class SQL patterns for one benchmark schema.
#[derive(Debug, Clone)]
pub struct SqlTemplates {
    /// Tables of the schema (used to vary the touched table per query).
    pub tables: Vec<&'static str>,
    /// Seed that decorrelates literal values across workloads.
    pub seed: u64,
}

impl SqlTemplates {
    /// Creates a template set for a schema.
    pub fn new(tables: Vec<&'static str>, seed: u64) -> Self {
        assert!(!tables.is_empty(), "a schema needs at least one table");
        SqlTemplates { tables, seed }
    }

    fn table(&self, iteration: usize, stream: u64) -> &'static str {
        let idx = ((hash_noise(self.seed, iteration, stream) + 1.0) / 2.0
            * self.tables.len() as f64) as usize;
        self.tables[idx.min(self.tables.len() - 1)]
    }

    fn literal(&self, iteration: usize, stream: u64) -> i64 {
        ((hash_noise(self.seed, iteration, stream) + 1.0) * 50_000.0) as i64
    }

    /// Renders one SQL statement of the given class.
    pub fn render(&self, class: QueryClass, iteration: usize, stream: u64) -> String {
        let t = self.table(iteration, stream);
        let t2 = self.table(iteration, stream.wrapping_add(7));
        let id = self.literal(iteration, stream.wrapping_add(13));
        let limit = 10 + (id % 90);
        match class {
            QueryClass::PointSelect => {
                format!("SELECT * FROM {t} WHERE {t}_id = {id}")
            }
            QueryClass::RangeSelect => format!(
                "SELECT * FROM {t} WHERE {t}_id BETWEEN {id} AND {} ORDER BY {t}_id LIMIT {limit}",
                id + 100
            ),
            QueryClass::Join => format!(
                "SELECT {t}.name, COUNT(*) FROM {t} JOIN {t2} ON {t}.{t2}_id = {t2}.id WHERE {t2}.kind > {} GROUP BY {t}.name",
                id % 100
            ),
            QueryClass::Aggregate => format!(
                "SELECT {t2}_id, SUM(amount), AVG(amount) FROM {t} WHERE created < {id} GROUP BY {t2}_id ORDER BY SUM(amount) DESC LIMIT {limit}"
            ),
            QueryClass::Insert => format!(
                "INSERT INTO {t} ({t}_id, {t2}_id, amount, created) VALUES ({id}, {}, {}, {})",
                id % 977,
                id % 101,
                id % 100_000
            ),
            QueryClass::Update => format!(
                "UPDATE {t} SET amount = amount + {} WHERE {t}_id = {id}",
                id % 13 + 1
            ),
            QueryClass::Delete => format!("DELETE FROM {t} WHERE {t}_id = {id}"),
        }
    }

    /// Synthesizes `n` statements whose class frequencies follow `mix`.
    pub fn sample(&self, mix: &WorkloadMix, iteration: usize, n: usize) -> Vec<String> {
        let mut queries = Vec::with_capacity(n);
        // Deterministic stratified sampling: walk the cumulative mix with n evenly spaced
        // probes, jittered per iteration, so proportions track the mix even for small n.
        for i in 0..n {
            let u = ((i as f64 + 0.5) / n as f64
                + 0.05 * hash_noise(self.seed, iteration, i as u64))
            .rem_euclid(1.0);
            let mut acc = 0.0;
            let mut chosen = QueryClass::PointSelect;
            for class in QueryClass::ALL {
                acc += mix.weight(class);
                if u <= acc {
                    chosen = class;
                    break;
                }
            }
            queries.push(self.render(chosen, iteration, i as u64));
        }
        queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn templates() -> SqlTemplates {
        SqlTemplates::new(vec!["orders", "customer", "item"], 11)
    }

    #[test]
    fn render_produces_class_appropriate_sql() {
        let t = templates();
        assert!(t
            .render(QueryClass::PointSelect, 0, 0)
            .starts_with("SELECT"));
        assert!(t.render(QueryClass::Insert, 0, 0).starts_with("INSERT"));
        assert!(t.render(QueryClass::Update, 0, 0).starts_with("UPDATE"));
        assert!(t.render(QueryClass::Delete, 0, 0).starts_with("DELETE"));
        assert!(t.render(QueryClass::Join, 0, 0).contains("JOIN"));
        assert!(t.render(QueryClass::Aggregate, 0, 0).contains("GROUP BY"));
    }

    #[test]
    fn sample_respects_mix_proportions() {
        let t = templates();
        let mix = WorkloadMix::new([0.5, 0.0, 0.0, 0.0, 0.5, 0.0, 0.0]);
        let queries = t.sample(&mix, 3, 200);
        assert_eq!(queries.len(), 200);
        let selects = queries.iter().filter(|q| q.starts_with("SELECT")).count();
        let inserts = queries.iter().filter(|q| q.starts_with("INSERT")).count();
        assert!((80..=120).contains(&selects), "selects = {selects}");
        assert!((80..=120).contains(&inserts), "inserts = {inserts}");
    }

    #[test]
    fn sampling_is_deterministic_per_iteration_and_varies_across_iterations() {
        let t = templates();
        let mix = WorkloadMix::new([0.7, 0.1, 0.0, 0.0, 0.1, 0.1, 0.0]);
        let a = t.sample(&mix, 5, 20);
        let b = t.sample(&mix, 5, 20);
        let c = t.sample(&mix, 6, 20);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn empty_schema_is_rejected() {
        SqlTemplates::new(vec![], 0);
    }
}
