//! Synthetic stand-in for the paper's production trace.
//!
//! The paper's real-world workload comes from a database-monitoring service (10:00–16:00 on
//! 2021-09-02) with a read/write ratio per minute varying between 3:1 and 74:1 and a
//! fluctuating arrival rate (Figure 1a shows the per-type queries-per-second trace of such
//! an application). That trace is proprietary, so this generator synthesizes a trace with
//! the same published characteristics: a diurnal-ish arrival-rate curve with bursts, and a
//! read/write ratio that wanders across the 3:1–74:1 band.

use crate::sql::SqlTemplates;
use crate::{hash_noise, Objective, WorkloadGenerator};
use simdb::{WorkloadMix, WorkloadSpec};

/// Real-world-trace workload generator.
#[derive(Debug, Clone)]
pub struct RealWorldWorkload {
    seed: u64,
    templates: SqlTemplates,
}

impl RealWorldWorkload {
    /// Data size of the production database stand-in.
    pub const INITIAL_DATA_GIB: f64 = 22.0;

    /// Creates the generator.
    pub fn new(seed: u64) -> Self {
        RealWorldWorkload {
            seed,
            templates: SqlTemplates::new(
                vec![
                    "events",
                    "hosts",
                    "metrics",
                    "alerts",
                    "dashboards",
                    "sessions",
                ],
                seed ^ 0x5EA1,
            ),
        }
    }

    /// Read/write ratio at an iteration, in the 3:1 … 74:1 band reported by the paper.
    pub fn read_write_ratio_at(&self, iteration: usize) -> f64 {
        let t = iteration as f64;
        // Log-scale wander between ln(3) and ln(74).
        let lo = 3.0f64.ln();
        let hi = 74.0f64.ln();
        let slow = 0.5 + 0.5 * (t / 150.0 * std::f64::consts::TAU).sin();
        let burst = 0.15 * hash_noise(self.seed, iteration, 1);
        let mixed = (lo + (hi - lo) * (slow + burst).clamp(0.0, 1.0)).exp();
        mixed.clamp(3.0, 74.0)
    }

    /// Offered load (queries per second) at an iteration: a plateau with two humps and
    /// burst noise, shaped like the Figure-1a trace.
    pub fn arrival_rate_at(&self, iteration: usize) -> f64 {
        let t = iteration as f64;
        let hump1 = (-((t - 90.0) / 55.0).powi(2)).exp();
        let hump2 = (-((t - 260.0) / 70.0).powi(2)).exp();
        let burst = 1.0 + 0.15 * hash_noise(self.seed, iteration, 2);
        (1800.0 + 5200.0 * hump1 + 4200.0 * hump2) * burst
    }
}

impl WorkloadGenerator for RealWorldWorkload {
    fn name(&self) -> &str {
        "realworld"
    }

    fn spec_at(&self, iteration: usize) -> WorkloadSpec {
        let ratio = self.read_write_ratio_at(iteration);
        let write = 1.0 / (1.0 + ratio);
        let read = 1.0 - write;
        WorkloadSpec {
            name: self.name().to_string(),
            mix: WorkloadMix::new([
                read * 0.7,
                read * 0.25,
                0.0,
                read * 0.05,
                write * 0.5,
                write * 0.4,
                write * 0.1,
            ]),
            arrival_rate_qps: Some(self.arrival_rate_at(iteration)),
            clients: 128,
            data_size_gib: Self::INITIAL_DATA_GIB,
            skew: 0.6,
            avg_rows_per_read: 40.0,
            avg_join_tables: 1.3,
            avg_selectivity: 0.08,
            index_coverage: 0.92,
        }
    }

    fn sample_queries(&self, iteration: usize, n: usize) -> Vec<String> {
        self.templates
            .sample(&self.spec_at(iteration).mix, iteration, n)
    }

    fn objective(&self) -> Objective {
        Objective::Throughput
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_ratio_stays_in_published_band() {
        let w = RealWorldWorkload::new(1);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for it in 0..400 {
            let r = w.read_write_ratio_at(it);
            assert!((3.0..=74.0).contains(&r));
            min = min.min(r);
            max = max.max(r);
        }
        assert!(
            min < 10.0,
            "ratio should reach the write-heavy end, min = {min}"
        );
        assert!(
            max > 50.0,
            "ratio should reach the read-heavy end, max = {max}"
        );
    }

    #[test]
    fn arrival_rate_fluctuates_with_humps() {
        let w = RealWorldWorkload::new(1);
        let baseline = w.arrival_rate_at(0);
        let peak = (0..400)
            .map(|it| w.arrival_rate_at(it))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(peak > baseline * 2.0, "peak {peak} vs baseline {baseline}");
        // Arrival rate is bounded (no runaway values).
        assert!(peak < 20_000.0);
    }

    #[test]
    fn spec_uses_limited_arrival_rate() {
        let w = RealWorldWorkload::new(3);
        let spec = w.spec_at(42);
        assert!(spec.arrival_rate_qps.is_some());
        assert!(spec.mix.read_fraction() > 0.5);
    }

    #[test]
    fn trace_is_reproducible() {
        let a = RealWorldWorkload::new(5);
        let b = RealWorldWorkload::new(5);
        for it in [0, 10, 200] {
            assert_eq!(a.spec_at(it), b.spec_at(it));
            assert_eq!(a.sample_queries(it, 10), b.sample_queries(it, 10));
        }
    }
}
