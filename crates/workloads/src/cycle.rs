//! The transactional–analytical daily cycle (§7.1.2): dynamic TPC-C and JOB alternate every
//! `phase_length` iterations, and the tuner optimizes 99th-percentile latency.

use crate::job::JobWorkload;
use crate::tpcc::TpccWorkload;
use crate::{Objective, WorkloadGenerator};
use simdb::WorkloadSpec;

/// Alternating TPC-C / JOB workload.
#[derive(Debug, Clone)]
pub struct TransactionalAnalyticalCycle {
    tpcc: TpccWorkload,
    job: JobWorkload,
    phase_length: usize,
}

impl TransactionalAnalyticalCycle {
    /// Creates the cycle with the paper's phase length of 100 iterations.
    pub fn new(seed: u64) -> Self {
        Self::with_phase_length(seed, 100)
    }

    /// Creates the cycle with a custom phase length (useful for shorter tests).
    pub fn with_phase_length(seed: u64, phase_length: usize) -> Self {
        assert!(phase_length > 0);
        TransactionalAnalyticalCycle {
            tpcc: TpccWorkload::new_dynamic(seed),
            job: JobWorkload::new_dynamic(seed ^ 0xA17),
            phase_length,
        }
    }

    /// Whether the given iteration is in a TPC-C (transactional) phase.
    pub fn is_transactional_phase(&self, iteration: usize) -> bool {
        (iteration / self.phase_length).is_multiple_of(2)
    }
}

impl WorkloadGenerator for TransactionalAnalyticalCycle {
    fn name(&self) -> &str {
        "tpcc-job-cycle"
    }

    fn spec_at(&self, iteration: usize) -> WorkloadSpec {
        if self.is_transactional_phase(iteration) {
            self.tpcc.spec_at(iteration)
        } else {
            self.job.spec_at(iteration)
        }
    }

    fn sample_queries(&self, iteration: usize, n: usize) -> Vec<String> {
        if self.is_transactional_phase(iteration) {
            self.tpcc.sample_queries(iteration, n)
        } else {
            self.job.sample_queries(iteration, n)
        }
    }

    fn objective(&self) -> Objective {
        // The paper uses 99th-percentile latency for this experiment because it is
        // meaningful for both the OLTP and the OLAP phase.
        Objective::P99Latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_alternate_every_hundred_iterations() {
        let c = TransactionalAnalyticalCycle::new(1);
        assert!(c.is_transactional_phase(0));
        assert!(c.is_transactional_phase(99));
        assert!(!c.is_transactional_phase(100));
        assert!(!c.is_transactional_phase(199));
        assert!(c.is_transactional_phase(200));
        assert_eq!(c.spec_at(50).name, "tpcc-dynamic");
        assert_eq!(c.spec_at(150).name, "job-dynamic");
    }

    #[test]
    fn phase_workloads_differ_sharply() {
        let c = TransactionalAnalyticalCycle::new(1);
        let oltp = c.spec_at(10);
        let olap = c.spec_at(110);
        assert!(oltp.mix.write_fraction() > 0.4);
        assert_eq!(olap.mix.write_fraction(), 0.0);
        assert!(olap.mix.analytical_fraction() > 0.9);
    }

    #[test]
    fn custom_phase_length_is_respected() {
        let c = TransactionalAnalyticalCycle::with_phase_length(2, 10);
        assert!(c.is_transactional_phase(9));
        assert!(!c.is_transactional_phase(10));
        assert!(c.is_transactional_phase(20));
    }

    #[test]
    fn objective_is_latency() {
        assert_eq!(
            TransactionalAnalyticalCycle::new(0).objective(),
            Objective::P99Latency
        );
    }

    #[test]
    #[should_panic]
    fn zero_phase_length_is_rejected() {
        TransactionalAnalyticalCycle::with_phase_length(0, 0);
    }
}
