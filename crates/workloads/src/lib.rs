//! # workloads — benchmark and real-world workload generators
//!
//! The paper evaluates OnlineTune on four benchmarks plus one production trace, each in a
//! *dynamic* variant (§7 "Workloads"):
//!
//! * **TPC-C** ([`tpcc`]) — write-heavy OLTP with complex relations and growing data;
//! * **Twitter** ([`twitter`]) — read-heavy, heavily skewed web workload;
//! * **JOB** ([`job`]) — the Join Order Benchmark: 113 analytical multi-join queries;
//! * **YCSB** ([`ycsb`]) — the 5-knob case-study workload with a shifting read/write mix;
//! * **Real-world** ([`realworld`]) — a diurnal trace with a fluctuating arrival rate and a
//!   read/write ratio varying between 3:1 and 74:1.
//!
//! On top of the base families, the [`drift`] module provides *drift combinators* —
//! gradual load ramps, abrupt family switches and periodic family alternation — that wrap
//! any generator and are themselves generators, so a scenario engine can script
//! adversarial environment change as a pure function of the iteration index.
//!
//! Each generator implements [`WorkloadGenerator`]: it produces the [`simdb::WorkloadSpec`]
//! for a given tuning iteration (this is where the *dynamics* live — sine-modulated
//! transaction weights, alternating OLTP/OLAP phases, arrival-rate schedules) and a sample
//! of SQL text for the interval, which the `featurize` crate encodes into the workload part
//! of the context feature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycle;
pub mod drift;
pub mod job;
pub mod realworld;
pub mod sql;
pub mod tpcc;
pub mod twitter;
pub mod ycsb;

use simdb::WorkloadSpec;

/// What the tuner optimizes for a given workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Maximize transactions per second (OLTP workloads).
    Throughput,
    /// Minimize the 99th-percentile latency (the transactional–analytical cycle experiment).
    P99Latency,
    /// Minimize total execution time of the interval's queries (JOB).
    ExecutionTime,
}

impl Objective {
    /// Converts an interval outcome into a "higher is better" score for the tuner.
    pub fn score(&self, outcome: &simdb::PerformanceOutcome) -> f64 {
        match self {
            Objective::Throughput => outcome.throughput_tps,
            Objective::P99Latency => -outcome.latency_p99_ms,
            Objective::ExecutionTime => -outcome.latency_avg_ms,
        }
    }

    /// Whether larger raw metric values are better.
    pub fn higher_is_better(&self) -> bool {
        matches!(self, Objective::Throughput)
    }
}

/// A deterministic source of per-iteration workload descriptions.
///
/// Implementations must be pure functions of the iteration index so that every tuner in a
/// comparison sees exactly the same sequence of workloads (the paper runs all baselines on
/// the same dynamic trace).
pub trait WorkloadGenerator: Send + Sync {
    /// Short name of the workload ("tpcc", "twitter", ...).
    fn name(&self) -> &str;

    /// The workload running during tuning iteration `iteration`.
    fn spec_at(&self, iteration: usize) -> WorkloadSpec;

    /// A representative sample of SQL statements for the interval, used for featurization.
    fn sample_queries(&self, iteration: usize, n: usize) -> Vec<String>;

    /// The optimization objective for this workload.
    fn objective(&self) -> Objective;

    /// The objective at a specific iteration. Defaults to the static [`Self::objective`];
    /// drift combinators that switch workload families mid-stream (see [`crate::drift`])
    /// override this so the objective follows the active family.
    fn objective_at(&self, _iteration: usize) -> Objective {
        self.objective()
    }

    /// Initial logical data size in GiB.
    fn initial_data_size_gib(&self) -> f64 {
        self.spec_at(0).data_size_gib
    }
}

/// Deterministic pseudo-random value in `[-1, 1]` derived from a seed and an iteration.
///
/// The dynamic schedules need small reproducible perturbations ("weights sampled from a
/// normal distribution with a sine of iterations as mean and a 10 % standard deviation")
/// without carrying mutable RNG state, so generators hash `(seed, iteration, stream)` into
/// a quasi-uniform value instead.
pub(crate) fn hash_noise(seed: u64, iteration: usize, stream: u64) -> f64 {
    let mut x = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(iteration as u64)
        .wrapping_mul(0xbf58476d1ce4e5b9)
        .wrapping_add(stream)
        .wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    x = x.wrapping_mul(0xd6e8feb86659fd93);
    x ^= x >> 32;
    (x as f64 / u64::MAX as f64) * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_scores_follow_direction() {
        let good = simdb::PerformanceOutcome {
            throughput_tps: 1000.0,
            latency_avg_ms: 5.0,
            latency_p99_ms: 20.0,
            failed: false,
        };
        let bad = simdb::PerformanceOutcome {
            throughput_tps: 100.0,
            latency_avg_ms: 50.0,
            latency_p99_ms: 400.0,
            failed: false,
        };
        assert!(Objective::Throughput.score(&good) > Objective::Throughput.score(&bad));
        assert!(Objective::P99Latency.score(&good) > Objective::P99Latency.score(&bad));
        assert!(Objective::ExecutionTime.score(&good) > Objective::ExecutionTime.score(&bad));
        assert!(Objective::Throughput.higher_is_better());
        assert!(!Objective::P99Latency.higher_is_better());
    }

    #[test]
    fn hash_noise_is_deterministic_and_bounded() {
        for it in 0..200 {
            let a = hash_noise(7, it, 3);
            let b = hash_noise(7, it, 3);
            assert_eq!(a, b);
            assert!((-1.0..=1.0).contains(&a));
        }
        assert_ne!(hash_noise(7, 10, 0), hash_noise(7, 11, 0));
        assert_ne!(hash_noise(7, 10, 0), hash_noise(8, 10, 0));
    }

    #[test]
    fn hash_noise_is_roughly_centred() {
        let vals: Vec<f64> = (0..2000).map(|i| hash_noise(1, i, 0)).collect();
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.1, "mean = {mean}");
    }
}
