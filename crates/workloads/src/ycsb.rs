//! YCSB-style workload for the 5-knob case study (§7.2).
//!
//! The paper constructs a workload trace with a shifting read/write transaction composition
//! (Figure 9: the read ratio wanders between roughly 40 % and 100 %) and tunes five knobs so
//! that the joint context–configuration space is small enough to exhaustively map
//! (Figure 10) and to identify the per-phase best configuration.

use crate::sql::SqlTemplates;
use crate::{hash_noise, Objective, WorkloadGenerator};
use simdb::{KnobCatalogue, WorkloadMix, WorkloadSpec};

/// YCSB workload generator with the Figure-9 read-ratio pattern.
#[derive(Debug, Clone)]
pub struct YcsbWorkload {
    seed: u64,
    templates: SqlTemplates,
}

impl YcsbWorkload {
    /// Data loaded for YCSB (usertable) in the case study.
    pub const INITIAL_DATA_GIB: f64 = 12.0;

    /// The five knobs tuned in the case study.
    pub const CASE_STUDY_KNOBS: [&'static str; 5] = [
        "innodb_buffer_pool_size",
        "max_heap_table_size",
        "innodb_spin_wait_delay",
        "sort_buffer_size",
        "innodb_thread_concurrency",
    ];

    /// Creates the generator.
    pub fn new(seed: u64) -> Self {
        YcsbWorkload {
            seed,
            templates: SqlTemplates::new(vec!["usertable"], seed ^ 0x4C5B),
        }
    }

    /// The reduced 5-knob catalogue used by the case study.
    pub fn case_study_catalogue() -> KnobCatalogue {
        KnobCatalogue::mysql57().subset(&Self::CASE_STUDY_KNOBS)
    }

    /// Read ratio at a given iteration (Figure 9's wandering pattern between ~0.4 and 1.0).
    pub fn read_ratio_at(&self, iteration: usize) -> f64 {
        let t = iteration as f64;
        let slow = (t / 130.0 * std::f64::consts::TAU).sin();
        let fast = (t / 35.0 * std::f64::consts::TAU).sin();
        let jitter = 0.03 * hash_noise(self.seed, iteration, 0);
        (0.7 + 0.25 * slow + 0.08 * fast + jitter).clamp(0.4, 1.0)
    }

    fn mix_at(&self, iteration: usize) -> WorkloadMix {
        let read = self.read_ratio_at(iteration);
        let write = 1.0 - read;
        // YCSB: reads are point lookups + short scans; writes are updates + inserts.
        WorkloadMix::new([
            read * 0.9,
            read * 0.1,
            0.0,
            0.0,
            write * 0.25,
            write * 0.75,
            0.0,
        ])
    }
}

impl WorkloadGenerator for YcsbWorkload {
    fn name(&self) -> &str {
        "ycsb"
    }

    fn spec_at(&self, iteration: usize) -> WorkloadSpec {
        WorkloadSpec {
            name: self.name().to_string(),
            mix: self.mix_at(iteration),
            arrival_rate_qps: None,
            clients: 48,
            data_size_gib: Self::INITIAL_DATA_GIB,
            skew: 0.7,
            avg_rows_per_read: 10.0,
            avg_join_tables: 1.0,
            avg_selectivity: 0.05,
            index_coverage: 1.0,
        }
    }

    fn sample_queries(&self, iteration: usize, n: usize) -> Vec<String> {
        self.templates.sample(&self.mix_at(iteration), iteration, n)
    }

    fn objective(&self) -> Objective {
        Objective::Throughput
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_ratio_stays_in_figure9_band() {
        let w = YcsbWorkload::new(1);
        let ratios: Vec<f64> = (0..400).map(|it| w.read_ratio_at(it)).collect();
        assert!(ratios.iter().all(|r| (0.4..=1.0).contains(r)));
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            min < 0.55,
            "the pattern should dip below 55% reads, min = {min}"
        );
        assert!(
            max > 0.9,
            "the pattern should approach read-only, max = {max}"
        );
    }

    #[test]
    fn mix_follows_read_ratio() {
        let w = YcsbWorkload::new(1);
        for it in [0, 100, 250] {
            let spec = w.spec_at(it);
            let expected_read = w.read_ratio_at(it);
            assert!((spec.mix.read_fraction() - expected_read).abs() < 1e-9);
        }
    }

    #[test]
    fn case_study_catalogue_has_exactly_five_knobs() {
        let cat = YcsbWorkload::case_study_catalogue();
        assert_eq!(cat.len(), 5);
        assert!(cat.index_of("innodb_buffer_pool_size").is_some());
        assert!(cat.index_of("max_heap_table_size").is_some());
        assert!(cat.index_of("innodb_spin_wait_delay").is_some());
    }

    #[test]
    fn queries_target_usertable() {
        let w = YcsbWorkload::new(2);
        let queries = w.sample_queries(10, 30);
        assert!(queries.iter().all(|q| q.contains("usertable")));
    }
}
