//! JOB (Join Order Benchmark)-style analytical workload: realistic complex multi-join
//! queries over the IMDB schema.

use crate::sql::SqlTemplates;
use crate::{hash_noise, Objective, WorkloadGenerator};
use simdb::{WorkloadMix, WorkloadSpec};

/// JOB-like analytical workload.
///
/// The paper executes ten JOB queries per iteration, re-sampling five of them each time
/// (§7.1.1); queries that exceed the interval are killed. Here the per-iteration re-sampling
/// shows up as a drift in the average join fan-out and selectivity of the interval's query
/// set, which is what the performance model consumes.
#[derive(Debug, Clone)]
pub struct JobWorkload {
    dynamic: bool,
    seed: u64,
    templates: SqlTemplates,
}

impl JobWorkload {
    /// Data loaded for JOB in the paper's setup (≈9 GiB).
    pub const INITIAL_DATA_GIB: f64 = 9.0;
    /// Number of distinct JOB queries.
    pub const QUERY_COUNT: usize = 113;
    /// Queries executed per iteration.
    pub const QUERIES_PER_ITERATION: usize = 10;

    /// Creates the static variant (a fixed representative query set).
    pub fn new_static(seed: u64) -> Self {
        Self::build(false, seed)
    }

    /// Creates the dynamic variant (five of the ten queries re-sampled every iteration).
    pub fn new_dynamic(seed: u64) -> Self {
        Self::build(true, seed)
    }

    fn build(dynamic: bool, seed: u64) -> Self {
        JobWorkload {
            dynamic,
            seed,
            templates: SqlTemplates::new(
                vec![
                    "title",
                    "movie_info",
                    "movie_companies",
                    "cast_info",
                    "name",
                    "company_name",
                    "keyword",
                    "movie_keyword",
                    "info_type",
                ],
                seed ^ 0x10B,
            ),
        }
    }

    /// Average join fan-out of the iteration's query set (drifts for the dynamic variant).
    fn join_tables_at(&self, iteration: usize) -> f64 {
        if !self.dynamic {
            return 5.0;
        }
        let drift = (iteration as f64 / 70.0 * std::f64::consts::TAU).sin();
        let jitter = hash_noise(self.seed, iteration, 1);
        (5.0 + 2.0 * drift + 0.8 * jitter).clamp(3.0, 8.0)
    }

    fn selectivity_at(&self, iteration: usize) -> f64 {
        if !self.dynamic {
            return 0.02;
        }
        let jitter = hash_noise(self.seed, iteration, 2);
        (0.02 + 0.012 * jitter).clamp(0.005, 0.05)
    }
}

impl WorkloadGenerator for JobWorkload {
    fn name(&self) -> &str {
        if self.dynamic {
            "job-dynamic"
        } else {
            "job"
        }
    }

    fn spec_at(&self, iteration: usize) -> WorkloadSpec {
        WorkloadSpec {
            name: self.name().to_string(),
            mix: WorkloadMix::new([0.0, 0.0, 0.62, 0.38, 0.0, 0.0, 0.0]),
            // Ten queries per 3-minute interval ≈ one query every 18 s offered.
            arrival_rate_qps: Some(Self::QUERIES_PER_ITERATION as f64 / 180.0),
            clients: 4,
            data_size_gib: Self::INITIAL_DATA_GIB,
            skew: 0.1,
            avg_rows_per_read: 4000.0,
            avg_join_tables: self.join_tables_at(iteration),
            avg_selectivity: self.selectivity_at(iteration),
            index_coverage: 0.6,
        }
    }

    fn sample_queries(&self, iteration: usize, n: usize) -> Vec<String> {
        self.templates.sample(
            &self.spec_at(iteration).mix,
            iteration,
            n.min(Self::QUERIES_PER_ITERATION.max(n.min(50))),
        )
    }

    fn objective(&self) -> Objective {
        Objective::ExecutionTime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_is_purely_analytical() {
        let w = JobWorkload::new_dynamic(1);
        let spec = w.spec_at(10);
        assert_eq!(spec.mix.write_fraction(), 0.0);
        assert!(spec.mix.analytical_fraction() > 0.99);
        assert!(spec.is_analytical());
        assert_eq!(w.objective(), Objective::ExecutionTime);
    }

    #[test]
    fn dynamic_variant_drifts_join_fanout_within_bounds() {
        let w = JobWorkload::new_dynamic(1);
        let mut values = Vec::new();
        for it in 0..200 {
            let jt = w.spec_at(it).avg_join_tables;
            assert!((3.0..=8.0).contains(&jt));
            values.push(jt);
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 1.0,
            "join fan-out should drift, got span {}",
            max - min
        );
    }

    #[test]
    fn static_variant_is_constant() {
        let w = JobWorkload::new_static(3);
        assert_eq!(w.spec_at(0), w.spec_at(123));
    }

    #[test]
    fn queries_look_like_imdb_joins() {
        let w = JobWorkload::new_dynamic(5);
        let queries = w.sample_queries(7, 10);
        assert!(!queries.is_empty());
        assert!(queries
            .iter()
            .any(|q| q.contains("JOIN") || q.contains("GROUP BY")));
        assert!(queries.iter().all(|q| q.starts_with("SELECT")));
    }
}
