//! Drift combinators: environment change as a pure function of the iteration index.
//!
//! The paper's central claim is safe tuning under *dynamic* environments, and each base
//! generator already carries its own intra-family dynamics (sine-modulated mixes, diurnal
//! arrival rates). This module adds the *adversarial* dynamics a scenario engine scripts
//! on top: gradual load ramps, abrupt workload-family switches and periodic family
//! alternation. Each combinator wraps one or two inner [`WorkloadGenerator`]s and is
//! itself a [`WorkloadGenerator`], so drifts compose (a ramp of a switch of a cycle).
//!
//! Like the base generators, every combinator is a pure function of the iteration index:
//! two generators built from the same parameters produce identical streams, which is what
//! lets a snapshot-restored tenant rebuild its (unserializable, `Box<dyn>`) generator from
//! its serialized spec and continue bit-identically.

use crate::{Objective, WorkloadGenerator};
use simdb::WorkloadSpec;

/// Gradually scales the load (client count and arrival rate) of an inner workload.
///
/// The scale factor moves linearly from `from_scale` to `to_scale` over the
/// `[start, start + over]` iteration window and stays at `to_scale` afterwards; with
/// `over == 0` the ramp degenerates to a step at `start`.
pub struct RateRamp {
    inner: Box<dyn WorkloadGenerator>,
    start: usize,
    over: usize,
    from_scale: f64,
    to_scale: f64,
    name: String,
}

impl RateRamp {
    /// Wraps `inner` in a load ramp.
    pub fn new(
        inner: Box<dyn WorkloadGenerator>,
        start: usize,
        over: usize,
        from_scale: f64,
        to_scale: f64,
    ) -> Self {
        let name = format!("{}+ramp", inner.name());
        RateRamp {
            inner,
            start,
            over,
            from_scale,
            to_scale,
            name,
        }
    }

    /// The load scale factor applied at `iteration`.
    pub fn scale_at(&self, iteration: usize) -> f64 {
        let progress = if iteration < self.start {
            0.0
        } else if self.over == 0 {
            1.0
        } else {
            ((iteration - self.start) as f64 / self.over as f64).min(1.0)
        };
        self.from_scale + (self.to_scale - self.from_scale) * progress
    }
}

impl WorkloadGenerator for RateRamp {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec_at(&self, iteration: usize) -> WorkloadSpec {
        let mut spec = self.inner.spec_at(iteration);
        let scale = self.scale_at(iteration);
        spec.clients = ((spec.clients as f64 * scale).round() as usize).max(1);
        spec.arrival_rate_qps = spec.arrival_rate_qps.map(|q| q * scale);
        spec
    }

    fn sample_queries(&self, iteration: usize, n: usize) -> Vec<String> {
        self.inner.sample_queries(iteration, n)
    }

    fn objective(&self) -> Objective {
        self.inner.objective()
    }

    fn objective_at(&self, iteration: usize) -> Objective {
        self.inner.objective_at(iteration)
    }

    fn initial_data_size_gib(&self) -> f64 {
        self.inner.initial_data_size_gib()
    }
}

/// Switches abruptly from one workload to another at a fixed iteration.
///
/// This is the sharpest environment change the scenario engine can script: the context
/// features jump between families (e.g. OLTP point lookups to analytical multi-joins),
/// which is exactly the shift that must drive the tuner's DBSCAN/NMI re-clustering and
/// SVM re-routing.
pub struct AbruptSwitch {
    before: Box<dyn WorkloadGenerator>,
    after: Box<dyn WorkloadGenerator>,
    at: usize,
    name: String,
}

impl AbruptSwitch {
    /// Runs `before` for iterations `< at` and `after` from `at` onwards.
    pub fn new(
        before: Box<dyn WorkloadGenerator>,
        after: Box<dyn WorkloadGenerator>,
        at: usize,
    ) -> Self {
        let name = format!("{}->{}", before.name(), after.name());
        AbruptSwitch {
            before,
            after,
            at,
            name,
        }
    }

    fn active(&self, iteration: usize) -> &dyn WorkloadGenerator {
        if iteration < self.at {
            self.before.as_ref()
        } else {
            self.after.as_ref()
        }
    }
}

impl WorkloadGenerator for AbruptSwitch {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec_at(&self, iteration: usize) -> WorkloadSpec {
        self.active(iteration).spec_at(iteration)
    }

    fn sample_queries(&self, iteration: usize, n: usize) -> Vec<String> {
        self.active(iteration).sample_queries(iteration, n)
    }

    fn objective(&self) -> Objective {
        // The static objective is the pre-switch one; iteration-aware callers should use
        // `objective_at`, which follows the switch.
        self.before.objective()
    }

    fn objective_at(&self, iteration: usize) -> Objective {
        self.active(iteration).objective_at(iteration)
    }

    fn initial_data_size_gib(&self) -> f64 {
        self.before.initial_data_size_gib()
    }
}

/// Alternates between two workloads every `period` iterations, starting with the first.
///
/// The transactional–analytical daily cycle of §7.1.2 is a special case; this combinator
/// generalizes it to any pair of generators so scenarios can script periodic drift on any
/// tenant.
pub struct PeriodicAlternation {
    a: Box<dyn WorkloadGenerator>,
    b: Box<dyn WorkloadGenerator>,
    period: usize,
    name: String,
}

impl PeriodicAlternation {
    /// Alternates `a` and `b` with the given phase length (must be non-zero).
    pub fn new(
        a: Box<dyn WorkloadGenerator>,
        b: Box<dyn WorkloadGenerator>,
        period: usize,
    ) -> Self {
        assert!(period > 0, "alternation period must be non-zero");
        let name = format!("{}~{}", a.name(), b.name());
        PeriodicAlternation { a, b, period, name }
    }

    /// Whether iteration `iteration` falls into an `a` phase.
    pub fn in_first_phase(&self, iteration: usize) -> bool {
        (iteration / self.period).is_multiple_of(2)
    }

    fn active(&self, iteration: usize) -> &dyn WorkloadGenerator {
        if self.in_first_phase(iteration) {
            self.a.as_ref()
        } else {
            self.b.as_ref()
        }
    }
}

impl WorkloadGenerator for PeriodicAlternation {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec_at(&self, iteration: usize) -> WorkloadSpec {
        self.active(iteration).spec_at(iteration)
    }

    fn sample_queries(&self, iteration: usize, n: usize) -> Vec<String> {
        self.active(iteration).sample_queries(iteration, n)
    }

    fn objective(&self) -> Objective {
        self.a.objective()
    }

    fn objective_at(&self, iteration: usize) -> Objective {
        self.active(iteration).objective_at(iteration)
    }

    fn initial_data_size_gib(&self) -> f64 {
        self.a.initial_data_size_gib()
    }
}

/// Sine-modulated load: a smooth day/night cycle layered on an inner workload.
///
/// The scale factor is `1 + amplitude·sin(2π·(iteration − anchor)/period)`, so the load
/// oscillates around its baseline with one full cycle every `period` iterations. The
/// `anchor` sets where in the cycle the curve starts, which lets a scenario engine apply
/// "a diurnal curve phase-aligned to now" to a running tenant.
pub struct DiurnalLoad {
    inner: Box<dyn WorkloadGenerator>,
    period: usize,
    amplitude: f64,
    anchor: usize,
    name: String,
}

impl DiurnalLoad {
    /// Wraps `inner` in a diurnal load curve. `amplitude` is clamped to `[0, 0.95]` so
    /// the scale factor never reaches zero; `period` is forced non-zero.
    pub fn new(
        inner: Box<dyn WorkloadGenerator>,
        period: usize,
        amplitude: f64,
        anchor: usize,
    ) -> Self {
        let name = format!("{}+diurnal", inner.name());
        DiurnalLoad {
            inner,
            period: period.max(1),
            amplitude: amplitude.clamp(0.0, 0.95),
            anchor,
            name,
        }
    }

    /// The load scale factor applied at `iteration`.
    pub fn scale_at(&self, iteration: usize) -> f64 {
        let phase =
            (iteration as f64 - self.anchor as f64) / self.period as f64 * std::f64::consts::TAU;
        1.0 + self.amplitude * phase.sin()
    }
}

impl WorkloadGenerator for DiurnalLoad {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec_at(&self, iteration: usize) -> WorkloadSpec {
        let mut spec = self.inner.spec_at(iteration);
        let scale = self.scale_at(iteration);
        spec.clients = ((spec.clients as f64 * scale).round() as usize).max(1);
        spec.arrival_rate_qps = spec.arrival_rate_qps.map(|q| q * scale);
        spec
    }

    fn sample_queries(&self, iteration: usize, n: usize) -> Vec<String> {
        self.inner.sample_queries(iteration, n)
    }

    fn objective(&self) -> Objective {
        self.inner.objective()
    }

    fn objective_at(&self, iteration: usize) -> Objective {
        self.inner.objective_at(iteration)
    }

    fn initial_data_size_gib(&self) -> f64 {
        self.inner.initial_data_size_gib()
    }
}

/// A flash crowd: load spikes to `peak`× at iteration `at` and decays exponentially back
/// to baseline with the given half-life.
///
/// The scale factor is `1` before the spike and `1 + (peak − 1)·2^(−(iteration − at)/half_life)`
/// from `at` onwards — the sharp onset / slow recovery shape of viral traffic, which
/// stresses the tuner differently from a symmetric ramp: the context jumps instantly but
/// returns through a continuum of intermediate loads.
pub struct FlashCrowd {
    inner: Box<dyn WorkloadGenerator>,
    at: usize,
    peak: f64,
    half_life: usize,
    name: String,
}

impl FlashCrowd {
    /// Wraps `inner` in a flash crowd at `at`. `peak` is clamped to `≥ 1` and
    /// `half_life` forced non-zero.
    pub fn new(inner: Box<dyn WorkloadGenerator>, at: usize, peak: f64, half_life: usize) -> Self {
        let name = format!("{}+flash", inner.name());
        FlashCrowd {
            inner,
            at,
            peak: peak.max(1.0),
            half_life: half_life.max(1),
            name,
        }
    }

    /// The load scale factor applied at `iteration`.
    pub fn scale_at(&self, iteration: usize) -> f64 {
        if iteration < self.at {
            return 1.0;
        }
        let decay = 0.5_f64.powf((iteration - self.at) as f64 / self.half_life as f64);
        1.0 + (self.peak - 1.0) * decay
    }
}

impl WorkloadGenerator for FlashCrowd {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec_at(&self, iteration: usize) -> WorkloadSpec {
        let mut spec = self.inner.spec_at(iteration);
        let scale = self.scale_at(iteration);
        spec.clients = ((spec.clients as f64 * scale).round() as usize).max(1);
        spec.arrival_rate_qps = spec.arrival_rate_qps.map(|q| q * scale);
        spec
    }

    fn sample_queries(&self, iteration: usize, n: usize) -> Vec<String> {
        self.inner.sample_queries(iteration, n)
    }

    fn objective(&self) -> Objective {
        self.inner.objective()
    }

    fn objective_at(&self, iteration: usize) -> Objective {
        self.inner.objective_at(iteration)
    }

    fn initial_data_size_gib(&self) -> f64 {
        self.inner.initial_data_size_gib()
    }
}

/// Gradual data-skew growth: access skew drifts towards `to_skew` while the tracked data
/// volume grows by `data_factor`, both linearly over `[start, start + over]`.
///
/// This models organic dataset aging — a few keys heat up while the table keeps growing —
/// which shifts the optimizer-statistics features (and hence the tuner's context) without
/// any change in the query mix.
pub struct SkewGrowth {
    inner: Box<dyn WorkloadGenerator>,
    start: usize,
    over: usize,
    to_skew: f64,
    data_factor: f64,
    name: String,
}

impl SkewGrowth {
    /// Wraps `inner` in a skew/data-growth drift. `to_skew` is clamped to `[0, 1]` and
    /// `data_factor` to `≥ 0.01` (a shrink is allowed, vanishing data is not).
    pub fn new(
        inner: Box<dyn WorkloadGenerator>,
        start: usize,
        over: usize,
        to_skew: f64,
        data_factor: f64,
    ) -> Self {
        let name = format!("{}+skewgrow", inner.name());
        SkewGrowth {
            inner,
            start,
            over,
            to_skew: to_skew.clamp(0.0, 1.0),
            data_factor: data_factor.max(0.01),
            name,
        }
    }

    /// Progress through the growth window at `iteration` (0 before, 1 after).
    pub fn progress_at(&self, iteration: usize) -> f64 {
        if iteration < self.start {
            0.0
        } else if self.over == 0 {
            1.0
        } else {
            ((iteration - self.start) as f64 / self.over as f64).min(1.0)
        }
    }
}

impl WorkloadGenerator for SkewGrowth {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec_at(&self, iteration: usize) -> WorkloadSpec {
        let mut spec = self.inner.spec_at(iteration);
        let p = self.progress_at(iteration);
        spec.skew = (spec.skew + (self.to_skew - spec.skew) * p).clamp(0.0, 1.0);
        spec.data_size_gib *= 1.0 + (self.data_factor - 1.0) * p;
        spec
    }

    fn sample_queries(&self, iteration: usize, n: usize) -> Vec<String> {
        self.inner.sample_queries(iteration, n)
    }

    fn objective(&self) -> Objective {
        self.inner.objective()
    }

    fn objective_at(&self, iteration: usize) -> Objective {
        self.inner.objective_at(iteration)
    }

    fn initial_data_size_gib(&self) -> f64 {
        self.inner.initial_data_size_gib()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobWorkload;
    use crate::tpcc::TpccWorkload;
    use crate::ycsb::YcsbWorkload;

    fn ycsb() -> Box<dyn WorkloadGenerator> {
        Box::new(YcsbWorkload::new(7))
    }

    fn job() -> Box<dyn WorkloadGenerator> {
        Box::new(JobWorkload::new_dynamic(7))
    }

    #[test]
    fn rate_ramp_scales_clients_linearly_and_saturates() {
        let base_clients = ycsb().spec_at(0).clients;
        let ramp = RateRamp::new(ycsb(), 10, 20, 1.0, 2.0);
        assert_eq!(ramp.scale_at(0), 1.0);
        assert_eq!(ramp.scale_at(10), 1.0);
        assert!((ramp.scale_at(20) - 1.5).abs() < 1e-12);
        assert_eq!(ramp.scale_at(30), 2.0);
        assert_eq!(ramp.scale_at(500), 2.0);
        assert_eq!(ramp.spec_at(0).clients, base_clients);
        assert_eq!(ramp.spec_at(500).clients, base_clients * 2);
        // The mix and the objective are untouched by a load ramp.
        assert_eq!(ramp.objective_at(500), Objective::Throughput);
    }

    #[test]
    fn rate_ramp_with_zero_length_is_a_step_at_start() {
        let ramp = RateRamp::new(ycsb(), 5, 0, 1.0, 3.0);
        assert_eq!(ramp.scale_at(4), 1.0);
        assert_eq!(ramp.scale_at(5), 3.0);
        assert_eq!(ramp.scale_at(6), 3.0);
    }

    #[test]
    fn rate_ramp_never_drops_clients_to_zero() {
        let ramp = RateRamp::new(ycsb(), 0, 0, 0.0, 0.0);
        assert_eq!(ramp.spec_at(10).clients, 1);
    }

    #[test]
    fn abrupt_switch_changes_spec_queries_and_objective_at_the_boundary() {
        let sw = AbruptSwitch::new(ycsb(), job(), 50);
        assert_eq!(sw.spec_at(49).name, "ycsb");
        assert_eq!(sw.spec_at(50).name, "job-dynamic");
        assert_eq!(sw.objective_at(49), Objective::Throughput);
        assert_eq!(sw.objective_at(50), Objective::ExecutionTime);
        // The static objective stays the pre-switch one (documented behaviour).
        assert_eq!(sw.objective(), Objective::Throughput);
        // Query text follows the active family.
        assert!(sw
            .sample_queries(49, 5)
            .iter()
            .any(|q| q.contains("usertable")));
        assert!(sw
            .sample_queries(50, 5)
            .iter()
            .all(|q| !q.contains("usertable")));
        // Initial data size comes from the family the session starts with.
        assert_eq!(sw.initial_data_size_gib(), YcsbWorkload::INITIAL_DATA_GIB);
    }

    #[test]
    fn periodic_alternation_cycles_phases() {
        let alt = PeriodicAlternation::new(
            Box::new(TpccWorkload::new_dynamic(3)),
            Box::new(JobWorkload::new_dynamic(3)),
            25,
        );
        assert!(alt.in_first_phase(0));
        assert!(alt.in_first_phase(24));
        assert!(!alt.in_first_phase(25));
        assert!(alt.in_first_phase(50));
        assert_eq!(alt.spec_at(10).name, "tpcc-dynamic");
        assert_eq!(alt.spec_at(30).name, "job-dynamic");
        assert_eq!(alt.objective_at(30), Objective::ExecutionTime);
    }

    #[test]
    fn diurnal_load_oscillates_around_baseline_with_the_given_period() {
        let diurnal = DiurnalLoad::new(ycsb(), 24, 0.5, 0);
        assert!((diurnal.scale_at(0) - 1.0).abs() < 1e-12);
        assert!((diurnal.scale_at(6) - 1.5).abs() < 1e-9); // quarter period: peak
        assert!((diurnal.scale_at(18) - 0.5).abs() < 1e-9); // three quarters: trough
        assert!((diurnal.scale_at(24) - diurnal.scale_at(0)).abs() < 1e-9);
        // Anchoring shifts the phase: the anchored curve at `it` equals the unanchored
        // curve at `it - anchor`.
        let anchored = DiurnalLoad::new(ycsb(), 24, 0.5, 10);
        for it in [10, 16, 20, 40] {
            assert!((anchored.scale_at(it) - diurnal.scale_at(it - 10)).abs() < 1e-12);
        }
    }

    #[test]
    fn diurnal_amplitude_is_clamped_so_load_never_vanishes() {
        let diurnal = DiurnalLoad::new(ycsb(), 8, 5.0, 0);
        for it in 0..16 {
            assert!(diurnal.scale_at(it) > 0.0);
            assert!(diurnal.spec_at(it).clients >= 1);
        }
    }

    #[test]
    fn flash_crowd_spikes_then_decays_with_the_half_life() {
        let flash = FlashCrowd::new(ycsb(), 20, 5.0, 10);
        assert_eq!(flash.scale_at(0), 1.0);
        assert_eq!(flash.scale_at(19), 1.0);
        assert!((flash.scale_at(20) - 5.0).abs() < 1e-12);
        assert!((flash.scale_at(30) - 3.0).abs() < 1e-9); // one half-life: 1 + 4/2
        assert!((flash.scale_at(40) - 2.0).abs() < 1e-9); // two half-lives: 1 + 4/4
        assert!(flash.scale_at(200) < 1.01); // long after: back to baseline
        let base_clients = ycsb().spec_at(20).clients;
        assert_eq!(flash.spec_at(20).clients, base_clients * 5);
    }

    #[test]
    fn skew_growth_interpolates_skew_and_scales_data() {
        let base = ycsb().spec_at(0);
        let grow = SkewGrowth::new(ycsb(), 10, 20, 1.0, 4.0);
        let before = grow.spec_at(0);
        assert_eq!(before.skew, base.skew);
        assert_eq!(before.data_size_gib, base.data_size_gib);
        let mid = grow.spec_at(20); // halfway through the window
        assert!((mid.skew - (base.skew + (1.0 - base.skew) * 0.5)).abs() < 1e-9);
        assert!((mid.data_size_gib - base.data_size_gib * 2.5).abs() < 1e-9);
        let after = grow.spec_at(100);
        assert!((after.skew - 1.0).abs() < 1e-12);
        assert!((after.data_size_gib - base.data_size_gib * 4.0).abs() < 1e-9);
        // Query mix and objective are untouched (the base mix itself varies with the
        // iteration, so compare against the base at the same position).
        assert_eq!(after.mix.weights(), ycsb().spec_at(100).mix.weights());
        assert_eq!(grow.objective_at(100), Objective::Throughput);
    }

    #[test]
    fn combinators_are_pure_functions_of_the_iteration() {
        // Two independently built stacks of the same parameters must agree exactly — the
        // snapshot-restore path rebuilds generators from serialized parameters and relies
        // on this.
        let build = || {
            RateRamp::new(
                Box::new(AbruptSwitch::new(ycsb(), job(), 40)),
                10,
                30,
                1.0,
                1.8,
            )
        };
        let a = build();
        let b = build();
        for it in [0, 9, 10, 39, 40, 41, 100] {
            let sa = a.spec_at(it);
            let sb = b.spec_at(it);
            assert_eq!(sa.name, sb.name);
            assert_eq!(sa.clients, sb.clients);
            assert_eq!(sa.mix.weights(), sb.mix.weights());
            assert_eq!(a.sample_queries(it, 8), b.sample_queries(it, 8));
        }
    }
}
