//! TPC-C-style workload: write-heavy OLTP with complex relations and growing data.

use crate::sql::SqlTemplates;
use crate::{hash_noise, Objective, WorkloadGenerator};
use simdb::{WorkloadMix, WorkloadSpec};

/// TPC-C-like workload generator.
///
/// The static variant keeps the standard transaction mix; the dynamic variant modulates the
/// transaction weights with a sine of the iteration index plus a 10 % pseudo-random jitter,
/// which is how the paper constructs its "dynamic query composition" workloads (§7.1.1).
#[derive(Debug, Clone)]
pub struct TpccWorkload {
    dynamic: bool,
    seed: u64,
    templates: SqlTemplates,
}

impl TpccWorkload {
    /// Data loaded for TPC-C in the paper's setup (≈18 GiB).
    pub const INITIAL_DATA_GIB: f64 = 18.0;

    /// Creates the static-mix variant.
    pub fn new_static(seed: u64) -> Self {
        Self::build(false, seed)
    }

    /// Creates the dynamic-mix variant.
    pub fn new_dynamic(seed: u64) -> Self {
        Self::build(true, seed)
    }

    fn build(dynamic: bool, seed: u64) -> Self {
        TpccWorkload {
            dynamic,
            seed,
            templates: SqlTemplates::new(
                vec![
                    "warehouse",
                    "district",
                    "customer",
                    "orders",
                    "new_order",
                    "order_line",
                    "stock",
                    "item",
                    "history",
                ],
                seed ^ 0xC0FFEE,
            ),
        }
    }

    /// The standard TPC-C transaction mix mapped to the simulator's query classes.
    fn base_weights() -> [f64; 7] {
        // [point, range, join, aggregate, insert, update, delete]
        [0.18, 0.08, 0.0, 0.02, 0.30, 0.34, 0.08]
    }

    fn mix_at(&self, iteration: usize) -> WorkloadMix {
        let base = Self::base_weights();
        if !self.dynamic {
            return WorkloadMix::new(base);
        }
        let mut w = base;
        let period = 120.0;
        for (i, weight) in w.iter_mut().enumerate() {
            let phase = i as f64 * std::f64::consts::FRAC_PI_3;
            let sine = (iteration as f64 / period * std::f64::consts::TAU + phase).sin();
            let jitter = 0.1 * hash_noise(self.seed, iteration, i as u64);
            *weight *= (1.0 + 0.35 * sine + jitter).max(0.05);
        }
        WorkloadMix::new(w)
    }
}

impl WorkloadGenerator for TpccWorkload {
    fn name(&self) -> &str {
        if self.dynamic {
            "tpcc-dynamic"
        } else {
            "tpcc"
        }
    }

    fn spec_at(&self, iteration: usize) -> WorkloadSpec {
        WorkloadSpec {
            name: self.name().to_string(),
            mix: self.mix_at(iteration),
            arrival_rate_qps: None, // unlimited arrival, as in the paper
            clients: 32,
            data_size_gib: Self::INITIAL_DATA_GIB,
            skew: 0.4,
            avg_rows_per_read: 12.0,
            avg_join_tables: 1.5,
            avg_selectivity: 0.1,
            index_coverage: 0.97,
        }
    }

    fn sample_queries(&self, iteration: usize, n: usize) -> Vec<String> {
        self.templates.sample(&self.mix_at(iteration), iteration, n)
    }

    fn objective(&self) -> Objective {
        Objective::Throughput
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_variant_is_constant_over_iterations() {
        let w = TpccWorkload::new_static(1);
        assert_eq!(w.spec_at(0).mix, w.spec_at(250).mix);
        assert_eq!(w.name(), "tpcc");
    }

    #[test]
    fn dynamic_variant_changes_the_mix() {
        let w = TpccWorkload::new_dynamic(1);
        let a = w.spec_at(0).mix;
        let b = w.spec_at(60).mix;
        assert_ne!(a, b);
        assert_eq!(w.name(), "tpcc-dynamic");
        // Same iteration must always give the same mix (pure function).
        assert_eq!(w.spec_at(60).mix, w.spec_at(60).mix);
    }

    #[test]
    fn workload_is_write_heavy() {
        let w = TpccWorkload::new_dynamic(2);
        for it in [0, 50, 100, 200, 399] {
            let spec = w.spec_at(it);
            assert!(
                spec.mix.write_fraction() > 0.4,
                "iteration {it} write fraction {}",
                spec.mix.write_fraction()
            );
        }
    }

    #[test]
    fn queries_reference_the_tpcc_schema() {
        let w = TpccWorkload::new_dynamic(3);
        let queries = w.sample_queries(10, 50);
        assert_eq!(queries.len(), 50);
        assert!(queries
            .iter()
            .any(|q| q.contains("warehouse") || q.contains("order") || q.contains("stock")));
        assert!(queries
            .iter()
            .any(|q| q.starts_with("UPDATE") || q.starts_with("INSERT")));
    }

    #[test]
    fn objective_is_throughput() {
        assert_eq!(
            TpccWorkload::new_dynamic(0).objective(),
            Objective::Throughput
        );
        assert_eq!(TpccWorkload::new_dynamic(0).initial_data_size_gib(), 18.0);
    }
}
