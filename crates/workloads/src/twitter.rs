//! Twitter-style workload: read-heavy, heavily skewed many-to-many accesses.

use crate::sql::SqlTemplates;
use crate::{hash_noise, Objective, WorkloadGenerator};
use simdb::{WorkloadMix, WorkloadSpec};

/// Twitter workload generator (OLTP-Bench's Twitter benchmark: get-tweet, get-followers,
/// insert-tweet and follow/unfollow operations over a heavily skewed social graph).
#[derive(Debug, Clone)]
pub struct TwitterWorkload {
    dynamic: bool,
    seed: u64,
    templates: SqlTemplates,
}

impl TwitterWorkload {
    /// Data loaded for Twitter in the paper's setup (≈29 GiB).
    pub const INITIAL_DATA_GIB: f64 = 29.0;

    /// Creates the static-mix variant.
    pub fn new_static(seed: u64) -> Self {
        Self::build(false, seed)
    }

    /// Creates the dynamic-mix variant.
    pub fn new_dynamic(seed: u64) -> Self {
        Self::build(true, seed)
    }

    fn build(dynamic: bool, seed: u64) -> Self {
        TwitterWorkload {
            dynamic,
            seed,
            templates: SqlTemplates::new(
                vec!["tweets", "users", "followers", "follows", "added_tweets"],
                seed ^ 0x7117,
            ),
        }
    }

    fn base_weights() -> [f64; 7] {
        // [point, range, join, aggregate, insert, update, delete]
        [0.75, 0.11, 0.0, 0.01, 0.09, 0.04, 0.0]
    }

    fn mix_at(&self, iteration: usize) -> WorkloadMix {
        let base = Self::base_weights();
        if !self.dynamic {
            return WorkloadMix::new(base);
        }
        let mut w = base;
        let period = 90.0;
        for (i, weight) in w.iter_mut().enumerate() {
            let phase = i as f64 * 1.1;
            let sine = (iteration as f64 / period * std::f64::consts::TAU + phase).sin();
            let jitter = 0.1 * hash_noise(self.seed, iteration, i as u64);
            *weight *= (1.0 + 0.4 * sine + jitter).max(0.05);
        }
        WorkloadMix::new(w)
    }
}

impl WorkloadGenerator for TwitterWorkload {
    fn name(&self) -> &str {
        if self.dynamic {
            "twitter-dynamic"
        } else {
            "twitter"
        }
    }

    fn spec_at(&self, iteration: usize) -> WorkloadSpec {
        WorkloadSpec {
            name: self.name().to_string(),
            mix: self.mix_at(iteration),
            arrival_rate_qps: None,
            clients: 64,
            data_size_gib: Self::INITIAL_DATA_GIB,
            skew: 0.9,
            avg_rows_per_read: 25.0,
            avg_join_tables: 1.2,
            avg_selectivity: 0.02,
            index_coverage: 0.98,
        }
    }

    fn sample_queries(&self, iteration: usize, n: usize) -> Vec<String> {
        self.templates.sample(&self.mix_at(iteration), iteration, n)
    }

    fn objective(&self) -> Objective {
        Objective::Throughput
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twitter_is_read_heavy_and_skewed() {
        let w = TwitterWorkload::new_dynamic(1);
        for it in [0, 77, 200, 399] {
            let spec = w.spec_at(it);
            assert!(spec.mix.read_fraction() > 0.6, "iteration {it}");
            assert!(spec.skew > 0.8);
        }
    }

    #[test]
    fn dynamic_mix_varies_but_is_reproducible() {
        let w = TwitterWorkload::new_dynamic(9);
        assert_ne!(w.spec_at(0).mix, w.spec_at(45).mix);
        assert_eq!(
            w.spec_at(45).mix,
            TwitterWorkload::new_dynamic(9).spec_at(45).mix
        );
    }

    #[test]
    fn static_variant_is_constant() {
        let w = TwitterWorkload::new_static(1);
        assert_eq!(w.spec_at(3).mix, w.spec_at(303).mix);
    }

    #[test]
    fn queries_touch_the_twitter_schema() {
        let w = TwitterWorkload::new_dynamic(2);
        let queries = w.sample_queries(4, 40);
        assert!(queries
            .iter()
            .any(|q| q.contains("tweets") || q.contains("follow")));
        let selects = queries.iter().filter(|q| q.starts_with("SELECT")).count();
        assert!(
            selects > queries.len() / 2,
            "read-heavy mix should produce mostly SELECTs"
        );
    }
}
