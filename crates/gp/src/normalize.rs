//! Input/output normalization helpers.
//!
//! GP surrogates behave poorly when raw knob values (bytes, counts, microseconds) spanning
//! ten orders of magnitude are fed directly into a stationary kernel, so configuration
//! vectors are min–max scaled to the unit hypercube and observed performance values are
//! standardized to zero mean / unit variance before fitting.

/// Standardizes scalars to zero mean and unit variance (and back).
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    mean: f64,
    scale: f64,
}

impl Standardizer {
    /// Fits the standardizer on a sample. A degenerate (constant or empty) sample produces
    /// a unit scale so transforms stay well-defined.
    pub fn fit(values: &[f64]) -> Self {
        let mean = linalg::vecops::mean(values);
        let sd = linalg::vecops::std_dev(values);
        let scale = if sd > 1e-12 { sd } else { 1.0 };
        Standardizer { mean, scale }
    }

    /// Identity standardizer (mean 0, scale 1).
    pub fn identity() -> Self {
        Standardizer {
            mean: 0.0,
            scale: 1.0,
        }
    }

    /// Maps an original-unit value to standardized space.
    pub fn transform(&self, v: f64) -> f64 {
        (v - self.mean) / self.scale
    }

    /// Maps a standardized value back to original units.
    pub fn inverse(&self, v: f64) -> f64 {
        v * self.scale + self.mean
    }

    /// The scale (standard deviation) used; needed to un-standardize predictive variances.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The mean used.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

/// Min–max scaler mapping each coordinate of a vector into `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl MinMaxScaler {
    /// Creates a scaler from explicit per-dimension bounds. Degenerate dimensions
    /// (`lo == hi`) map to 0.5.
    pub fn from_bounds(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len());
        MinMaxScaler { lo, hi }
    }

    /// Fits the scaler from data (per-dimension min and max).
    pub fn fit(data: &[Vec<f64>]) -> Self {
        assert!(!data.is_empty(), "cannot fit a scaler on empty data");
        let dim = data[0].len();
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for row in data {
            for (d, &v) in row.iter().enumerate() {
                lo[d] = lo[d].min(v);
                hi[d] = hi[d].max(v);
            }
        }
        MinMaxScaler { lo, hi }
    }

    /// Dimensionality of the scaler.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Scales a vector into the unit hypercube (values outside the bounds are clamped).
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.lo.len());
        x.iter()
            .enumerate()
            .map(|(d, &v)| {
                let span = self.hi[d] - self.lo[d];
                if span.abs() < 1e-12 {
                    0.5
                } else {
                    ((v - self.lo[d]) / span).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    /// Maps a unit-hypercube vector back to original units.
    pub fn inverse(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.lo.len());
        x.iter()
            .enumerate()
            .map(|(d, &v)| self.lo[d] + v.clamp(0.0, 1.0) * (self.hi[d] - self.lo[d]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_roundtrip() {
        let values = [10.0, 20.0, 30.0, 40.0];
        let s = Standardizer::fit(&values);
        for &v in &values {
            assert!((s.inverse(s.transform(v)) - v).abs() < 1e-10);
        }
        let transformed: Vec<f64> = values.iter().map(|&v| s.transform(v)).collect();
        assert!(linalg::vecops::mean(&transformed).abs() < 1e-10);
        assert!((linalg::vecops::std_dev(&transformed) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn standardizer_handles_constant_input() {
        let s = Standardizer::fit(&[5.0, 5.0, 5.0]);
        assert_eq!(s.transform(5.0), 0.0);
        assert_eq!(s.inverse(0.0), 5.0);
        assert_eq!(s.scale(), 1.0);
    }

    #[test]
    fn minmax_from_bounds_scales_and_clamps() {
        let s = MinMaxScaler::from_bounds(vec![0.0, 100.0], vec![10.0, 200.0]);
        assert_eq!(s.transform(&[5.0, 150.0]), vec![0.5, 0.5]);
        assert_eq!(s.transform(&[-5.0, 500.0]), vec![0.0, 1.0]);
        assert_eq!(s.inverse(&[0.5, 0.5]), vec![5.0, 150.0]);
    }

    #[test]
    fn minmax_fit_uses_data_extent() {
        let data = vec![vec![1.0, -2.0], vec![3.0, 4.0], vec![2.0, 1.0]];
        let s = MinMaxScaler::fit(&data);
        assert_eq!(s.transform(&[1.0, -2.0]), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[3.0, 4.0]), vec![1.0, 1.0]);
    }

    #[test]
    fn minmax_degenerate_dimension_maps_to_half() {
        let s = MinMaxScaler::from_bounds(vec![3.0], vec![3.0]);
        assert_eq!(s.transform(&[3.0]), vec![0.5]);
        assert_eq!(s.inverse(&[0.7]), vec![3.0]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_minmax_transform_in_unit_cube(
                x in proptest::collection::vec(-1000.0f64..1000.0, 5),
            ) {
                let s = MinMaxScaler::from_bounds(vec![-100.0; 5], vec![100.0; 5]);
                for v in s.transform(&x) {
                    prop_assert!((0.0..=1.0).contains(&v));
                }
            }

            #[test]
            fn prop_minmax_roundtrip_within_bounds(
                x in proptest::collection::vec(0.0f64..1.0, 4),
            ) {
                let s = MinMaxScaler::from_bounds(vec![10.0, -5.0, 0.0, 100.0], vec![20.0, 5.0, 1.0, 900.0]);
                let orig = s.inverse(&x);
                let back = s.transform(&orig);
                for (a, b) in x.iter().zip(back.iter()) {
                    prop_assert!((a - b).abs() < 1e-9);
                }
            }

            #[test]
            fn prop_standardizer_roundtrip(values in proptest::collection::vec(-1e6f64..1e6, 2..50), probe in -1e6f64..1e6) {
                let s = Standardizer::fit(&values);
                prop_assert!((s.inverse(s.transform(probe)) - probe).abs() < 1e-6 * probe.abs().max(1.0));
            }
        }
    }
}
