//! Acquisition functions for Bayesian optimization.
//!
//! * **Expected Improvement (EI)** — used by the OtterTune-style BO baseline (§7 Baselines)
//!   and by the stopping/triggering extension sketched in the paper's conclusion.
//! * **GP-UCB / GP-LCB** — OnlineTune selects candidates by maximizing the upper confidence
//!   bound within the safety set (Eq. 4) and assesses safety with the lower confidence
//!   bound (Eq. 3). The exploration weight `β_t` follows the schedule of Srinivas et al.,
//!   as cited in §6.2.1 and §6.3.

use crate::regression::Posterior;
use linalg::stats::{normal_cdf, normal_pdf};

/// Expected improvement of a maximization problem over the incumbent `best_so_far`.
///
/// `xi` is the usual exploration jitter (0.0 for pure exploitation; 0.01 is a common
/// default).
pub fn expected_improvement(posterior: &Posterior, best_so_far: f64, xi: f64) -> f64 {
    let sigma = posterior.std_dev.max(1e-12);
    let improvement = posterior.mean - best_so_far - xi;
    let z = improvement / sigma;
    let ei = improvement * normal_cdf(z) + sigma * normal_pdf(z);
    ei.max(0.0)
}

/// GP-UCB acquisition value `μ + β σ` (Eq. 4 of the paper).
pub fn upper_confidence_bound(posterior: &Posterior, beta: f64) -> f64 {
    posterior.mean + beta * posterior.std_dev
}

/// GP-LCB value `μ - β σ` (Eq. 3): the pessimistic performance estimate used for the
/// black-box safety assessment. A configuration is deemed safe when this exceeds the safety
/// threshold.
pub fn lower_confidence_bound(posterior: &Posterior, beta: f64) -> f64 {
    posterior.mean - beta * posterior.std_dev
}

/// The `β_t` schedule from Srinivas et al. (GP-UCB): `β_t = 2 log(d t² π² / (6 δ))`,
/// returned as the multiplier of the standard deviation (i.e. `sqrt(β_t)`), clamped to a
/// practical range.
///
/// * `t` — 1-based iteration counter.
/// * `dim` — dimensionality of the search space (configuration + context).
/// * `delta` — confidence parameter; the paper follows the common `δ = 0.1`.
pub fn ucb_beta(t: usize, dim: usize, delta: f64) -> f64 {
    let t = t.max(1) as f64;
    let dim = dim.max(1) as f64;
    let delta = delta.clamp(1e-6, 0.5);
    let beta_sq = 2.0 * (dim * t * t * std::f64::consts::PI.powi(2) / (6.0 * delta)).ln();
    // The theoretical schedule is notoriously conservative; like most practical GP-UCB /
    // SafeOpt implementations we cap the multiplier at a moderate value so the safety set
    // does not collapse to the already-evaluated points.
    beta_sq.max(1.0).sqrt().min(3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(mean: f64, std_dev: f64) -> Posterior {
        Posterior { mean, std_dev }
    }

    #[test]
    fn ei_is_zero_when_confidently_worse() {
        let p = post(0.0, 1e-9);
        assert_eq!(expected_improvement(&p, 10.0, 0.0), 0.0);
    }

    #[test]
    fn ei_positive_when_mean_exceeds_incumbent() {
        let p = post(5.0, 0.5);
        assert!(expected_improvement(&p, 4.0, 0.0) > 0.9);
    }

    #[test]
    fn ei_grows_with_uncertainty_for_equal_means() {
        let low = expected_improvement(&post(1.0, 0.1), 1.0, 0.0);
        let high = expected_improvement(&post(1.0, 2.0), 1.0, 0.0);
        assert!(high > low);
    }

    #[test]
    fn ucb_and_lcb_bracket_the_mean() {
        let p = post(3.0, 0.7);
        assert!(upper_confidence_bound(&p, 2.0) > p.mean);
        assert!(lower_confidence_bound(&p, 2.0) < p.mean);
        assert!(
            (upper_confidence_bound(&p, 2.0) + lower_confidence_bound(&p, 2.0)) / 2.0 - p.mean
                < 1e-12
        );
    }

    #[test]
    fn beta_schedule_is_increasing_in_t_and_bounded() {
        let b1 = ucb_beta(1, 40, 0.1);
        let b10 = ucb_beta(10, 40, 0.1);
        let b400 = ucb_beta(400, 40, 0.1);
        assert!(b1 <= b10 && b10 <= b400);
        assert!(b1 >= 1.0);
        assert!(b400 <= 3.0);
    }

    #[test]
    fn beta_schedule_tolerates_degenerate_inputs() {
        assert!(ucb_beta(0, 0, 0.0).is_finite());
        assert!(ucb_beta(0, 0, 1.0).is_finite());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_ei_nonnegative(mean in -100.0f64..100.0, sd in 0.0f64..50.0, best in -100.0f64..100.0) {
                let p = post(mean, sd);
                prop_assert!(expected_improvement(&p, best, 0.01) >= 0.0);
            }

            #[test]
            fn prop_lcb_below_ucb(mean in -100.0f64..100.0, sd in 0.0f64..50.0, beta in 0.0f64..6.0) {
                let p = post(mean, sd);
                prop_assert!(lower_confidence_bound(&p, beta) <= upper_confidence_bound(&p, beta) + 1e-12);
            }

            #[test]
            fn prop_ei_monotone_in_mean(sd in 0.01f64..10.0, best in -10.0f64..10.0, m1 in -10.0f64..10.0, m2 in -10.0f64..10.0) {
                let (lo, hi) = if m1 < m2 { (m1, m2) } else { (m2, m1) };
                let ei_lo = expected_improvement(&post(lo, sd), best, 0.0);
                let ei_hi = expected_improvement(&post(hi, sd), best, 0.0);
                prop_assert!(ei_hi + 1e-9 >= ei_lo);
            }
        }
    }
}
