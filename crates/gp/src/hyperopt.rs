//! Hyper-parameter optimization by maximizing the log marginal likelihood.
//!
//! Gradients of the marginal likelihood with respect to kernel hyper-parameters are easy to
//! derive but tedious to maintain for composite kernels, so this module uses a multi-start
//! **Nelder–Mead simplex** search over the log-space parameters exposed by
//! [`crate::kernels::Kernel::params`] plus the log observation-noise variance. The search
//! spaces are tiny (2–4 parameters) so the derivative-free approach converges in a few
//! dozen likelihood evaluations — well within OnlineTune's per-iteration budget (the paper
//! reports ≈1.4 s for "Model Update" on the Python implementation; ours is far cheaper).

use crate::kernels::Kernel;
use crate::normalize::Standardizer;
use crate::regression::{FitArena, GaussianProcess};
use linalg::Cholesky;
use rand::Rng;

/// Configuration for the marginal-likelihood optimization.
#[derive(Debug, Clone)]
pub struct HyperOptOptions {
    /// Number of random restarts (in addition to the current hyper-parameters).
    pub restarts: usize,
    /// Maximum Nelder–Mead iterations per restart.
    pub max_iters: usize,
    /// Convergence tolerance on the simplex spread of function values.
    pub tol: f64,
    /// Whether the observation-noise variance is optimized together with the kernel.
    pub optimize_noise: bool,
    /// Precompute the pairwise kernel statistics (squared distances / dot products)
    /// once and rebuild each trial's Gram matrix from the cache, turning the per-trial
    /// Gram cost from `O(n²·d)` into `O(n²)`. The cached path selects bit-identical
    /// hyper-parameters (see [`crate::kernels::Kernel::pair_stats`]); the switch exists
    /// for kernels without pair-stat support and for equivalence testing.
    pub use_distance_cache: bool,
    /// Worker threads for the restart searches: `1` runs them serially (the default),
    /// `0` uses one per available CPU, any other value caps the pool at that many.
    ///
    /// **Determinism contract:** the selected hyper-parameters, the reported likelihood
    /// and the evaluation count are *worker-count independent, bit for bit*. The restart
    /// starting points are drawn from the RNG serially before any worker runs (so the
    /// RNG stream is identical to the serial implementation), each restart's simplex
    /// search is independent and deterministic, and the winner is reduced in restart
    /// index order with a strict `<` — exactly the fold the serial loop performs.
    /// Property-tested across `workers ∈ {1, 2, 4}`.
    pub workers: usize,
    /// Intra-op worker threads *inside* each likelihood trial's Cholesky factorization
    /// (the trailing-panel worker pool of
    /// [`Cholesky::decompose_with_jitter_scratch_workers`]). Multiplies with `workers`:
    /// the optimizer may run up to `workers × intraop_workers` threads at once, so
    /// callers under a parallelism budget should grant accordingly (the fleet's
    /// three-level budget does). `0` is treated as `1`. Bit-identity contract: the
    /// selected hyper-parameters are identical at every value — the parallel trailing
    /// update reproduces the serial factorization exactly.
    pub intraop_workers: usize,
    /// Equivalence/benchmark switch: run each likelihood trial through the *reference*
    /// fit path — full Gram rebuild into a fresh allocation, the retained unblocked
    /// [`Cholesky::decompose_reference`], allocating solves — i.e. the trial loop as it
    /// existed before the blocked factorization and the fit arena. Selected
    /// hyper-parameters are bit-identical either way (the blocked factorization
    /// reproduces the reference exactly and the arena only recycles storage); the
    /// switch exists so `bench --bin fit_path` can measure the old fit path honestly.
    pub use_reference_factorization: bool,
}

impl Default for HyperOptOptions {
    fn default() -> Self {
        HyperOptOptions {
            restarts: 2,
            max_iters: 60,
            tol: 1e-4,
            optimize_noise: true,
            use_distance_cache: true,
            workers: 1,
            intraop_workers: 1,
            use_reference_factorization: false,
        }
    }
}

/// Log marginal likelihood evaluated from cached pairwise statistics.
///
/// Performs exactly the operations of [`GaussianProcess::log_marginal_likelihood`] —
/// Gram entries via [`Kernel::eval_stats`] are bit-identical to [`Kernel::eval`], and
/// the factorization/solve/log-det pipeline is unchanged — but rebuilding the Gram
/// matrix costs `O(n²)` instead of `O(n²·d)` because the per-pair statistics were
/// computed once up front. `stats` is row-major: the statistics of pair `(i, j)` live
/// at `stats[(i·n + j)·n_stats ..][.. n_stats]`.
///
/// All working storage (Gram buffer, factor, dual weights) comes from `arena`, so the
/// trial loop that calls this thousands of times per optimization performs no
/// allocation after its first evaluation.
#[allow(clippy::too_many_arguments)] // internal: one call site per path, all args hot
fn lml_from_stats(
    kernel: &dyn Kernel,
    noise_variance: f64,
    stats: &[f64],
    n_stats: usize,
    n: usize,
    y_std: &[f64],
    arena: &mut FitArena,
    reference_factorization: bool,
    intraop_workers: usize,
) -> Option<f64> {
    if reference_factorization {
        // The pre-blocking trial loop, verbatim: full Gram rebuild into a fresh
        // allocation, unblocked factorization, allocating solve. Benchmark-only.
        let mut k = linalg::Matrix::from_fn(n, n, |i, j| {
            kernel.eval_stats(&stats[(i * n + j) * n_stats..][..n_stats])
        });
        k.add_diagonal(noise_variance).ok()?;
        let chol = Cholesky::decompose_reference_with_jitter(&k, 1e-3).ok()?;
        let alpha = chol.solve(y_std).ok()?;
        let data_fit: f64 = y_std.iter().zip(alpha.iter()).map(|(a, b)| a * b).sum();
        return Some(
            -0.5 * data_fit
                - 0.5 * chol.log_det()
                - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln(),
        );
    }
    arena.gram.reshape(n, n);
    // Only the lower triangle (+ diagonal) is filled: the Cholesky factorization never
    // reads above the diagonal, pair statistics are exactly symmetric, and skipping the
    // mirror halves the `O(n²)` kernel re-evaluation that dominates each trial.
    for i in 0..n {
        for j in 0..=i {
            arena.gram.set(
                i,
                j,
                kernel.eval_stats(&stats[(i * n + j) * n_stats..][..n_stats]),
            );
        }
    }
    arena.gram.add_diagonal(noise_variance).ok()?;
    let chol = Cholesky::decompose_with_jitter_scratch_workers(
        &arena.gram,
        1e-3,
        &mut arena.factor,
        intraop_workers,
    )
    .ok()?;
    let mut alpha = std::mem::take(&mut arena.alpha_spare);
    let solved = chol.solve_into(y_std, &mut alpha);
    let result = solved.ok().map(|()| {
        let data_fit: f64 = y_std.iter().zip(alpha.iter()).map(|(a, b)| a * b).sum();
        -0.5 * data_fit - 0.5 * chol.log_det() - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln()
    });
    arena.alpha_spare = alpha;
    chol.into_scratch(&mut arena.factor);
    result
}

/// Result summary of one hyper-parameter optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperOptReport {
    /// Best log marginal likelihood found.
    pub best_lml: f64,
    /// Number of likelihood evaluations performed.
    pub evaluations: usize,
    /// Whether the optimizer improved on the initial hyper-parameters.
    pub improved: bool,
}

/// Minimizes `f` with the Nelder–Mead simplex method starting from `x0`.
///
/// Returns `(x_best, f_best, evaluations)`. This is a faithful but compact implementation of
/// the standard reflection / expansion / contraction / shrink steps; it is also used by the
/// white-box rule-relaxation diagnostics and by tests, hence public.
pub fn nelder_mead(
    f: &mut dyn FnMut(&[f64]) -> f64,
    x0: &[f64],
    step: f64,
    max_iters: usize,
    tol: f64,
) -> (Vec<f64>, f64, usize) {
    let n = x0.len();
    let mut evals = 0;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::MAX / 4.0
        }
    };

    if n == 0 {
        return (vec![], eval(&[], &mut evals), evals);
    }

    // Build the initial simplex: x0 plus one perturbed vertex per dimension.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), f0));
    for d in 0..n {
        let mut v = x0.to_vec();
        v[d] += step;
        let fv = eval(&v, &mut evals);
        simplex.push((v, fv));
    }

    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    for _ in 0..max_iters {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if (worst - best).abs() < tol {
            break;
        }

        // Centroid of all points except the worst.
        let mut centroid = vec![0.0; n];
        for (v, _) in simplex.iter().take(n) {
            for d in 0..n {
                centroid[d] += v[d] / n as f64;
            }
        }

        let worst_point = simplex[n].0.clone();
        let reflect: Vec<f64> = (0..n)
            .map(|d| centroid[d] + ALPHA * (centroid[d] - worst_point[d]))
            .collect();
        let f_reflect = eval(&reflect, &mut evals);

        if f_reflect < simplex[0].1 {
            // Try expanding further in the same direction.
            let expand: Vec<f64> = (0..n)
                .map(|d| centroid[d] + GAMMA * (reflect[d] - centroid[d]))
                .collect();
            let f_expand = eval(&expand, &mut evals);
            simplex[n] = if f_expand < f_reflect {
                (expand, f_expand)
            } else {
                (reflect, f_reflect)
            };
        } else if f_reflect < simplex[n - 1].1 {
            simplex[n] = (reflect, f_reflect);
        } else {
            // Contract toward the centroid.
            let contract: Vec<f64> = (0..n)
                .map(|d| centroid[d] + RHO * (worst_point[d] - centroid[d]))
                .collect();
            let f_contract = eval(&contract, &mut evals);
            if f_contract < simplex[n].1 {
                simplex[n] = (contract, f_contract);
            } else {
                // Shrink every vertex toward the best one.
                let best_point = simplex[0].0.clone();
                for vertex in simplex.iter_mut().skip(1) {
                    let shrunk: Vec<f64> = (0..n)
                        .map(|d| best_point[d] + SIGMA * (vertex.0[d] - best_point[d]))
                        .collect();
                    let fv = eval(&shrunk, &mut evals);
                    *vertex = (shrunk, fv);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let (x_best, f_best) = simplex.remove(0);
    (x_best, f_best, evals)
}

/// Optimizes the GP's kernel hyper-parameters (and optionally its noise variance) by
/// maximizing the log marginal likelihood of `(x, y)`, then refits the model.
///
/// Invariant: the final `fit` on `(x, y)` with the best hyper-parameters happens *inside*
/// this function. Callers must not fit again afterwards — fitting is deterministic, so a
/// second fit on the same data is pure redundant `O(n³)` work (and if the internal fit
/// failed, a retry would fail identically; check [`GaussianProcess::is_fitted`] instead).
pub fn optimize_hyperparameters<R: Rng>(
    gp: &mut GaussianProcess,
    x: &[Vec<f64>],
    y: &[f64],
    options: &HyperOptOptions,
    rng: &mut R,
) -> HyperOptReport {
    let span = gp.telemetry().begin_span();
    let initial_kernel_params = gp.kernel().params();
    let initial_noise = gp.noise_variance();
    let n_kernel = initial_kernel_params.len();

    let pack = |kp: &[f64], noise_log: f64, optimize_noise: bool| -> Vec<f64> {
        let mut v = kp.to_vec();
        if optimize_noise {
            v.push(noise_log);
        }
        v
    };

    let initial = pack(
        &initial_kernel_params,
        initial_noise.ln(),
        options.optimize_noise,
    );

    let baseline_lml = gp
        .log_marginal_likelihood(x, y)
        .unwrap_or(f64::NEG_INFINITY);

    // Every likelihood trial re-evaluates the full Gram matrix after a hyper-parameter
    // change, but the pairwise statistics the kernel is computed from (squared
    // distances, dot products) never change across trials. Precompute them — and the
    // standardized targets — once, so each trial's Gram rebuild is `O(n²)` instead of
    // `O(n²·d)` and the `O(n)` re-standardization of `y` is skipped. The cached
    // objective is bit-identical to the uncached one, so the simplex search visits the
    // same points and returns the same hyper-parameters.
    let n = x.len();
    let n_stats = gp.kernel().n_pair_stats();
    let cache: Option<(Vec<f64>, Vec<f64>)> =
        if options.use_distance_cache && n_stats > 0 && n > 0 && x.len() == y.len() {
            let mut stats = vec![0.0; n * n * n_stats];
            for i in 0..n {
                for j in 0..n {
                    gp.kernel().pair_stats(
                        &x[i],
                        &x[j],
                        &mut stats[(i * n + j) * n_stats..][..n_stats],
                    );
                }
            }
            let standardizer = Standardizer::fit(y);
            let y_std: Vec<f64> = y.iter().map(|&v| standardizer.transform(v)).collect();
            Some((stats, y_std))
        } else {
            None
        };

    // Restart starting points are drawn serially *before* any search runs: the RNG
    // stream is identical whether the searches below execute on one thread or many.
    let mut starts = vec![initial.clone()];
    for _ in 0..options.restarts {
        let jittered: Vec<f64> = initial
            .iter()
            .map(|p| p + rng.gen_range(-1.5..1.5))
            .collect();
        starts.push(jittered);
    }

    // One restart = one independent, deterministic Nelder–Mead search. Each search gets
    // its own fit arena (so its trial loop is allocation-free) and its own trial kernel
    // (set_params fully overwrites the hyper-parameters, so reuse across evaluations is
    // exact). The closure only reads shared state — safe to call from worker threads.
    let gp_ref: &GaussianProcess = gp;
    let cache_ref = cache.as_ref();
    let run_start = |start: &[f64]| -> (Vec<f64>, f64, usize) {
        let mut arena = FitArena::default();
        let mut trial_kernel = gp_ref.kernel().clone_box();
        let mut trial_gp: Option<GaussianProcess> = None;
        let mut objective = |params: &[f64]| -> f64 {
            let (kernel_part, noise_part) = if options.optimize_noise {
                params.split_at(n_kernel)
            } else {
                (params, &[][..])
            };
            if let Some((stats, y_std)) = cache_ref {
                trial_kernel.set_params(kernel_part);
                let noise = noise_part
                    .first()
                    .map(|log_noise| log_noise.exp().clamp(1e-8, 1.0))
                    .unwrap_or_else(|| gp_ref.noise_variance());
                return match lml_from_stats(
                    trial_kernel.as_ref(),
                    noise,
                    stats,
                    n_stats,
                    n,
                    y_std,
                    &mut arena,
                    options.use_reference_factorization,
                    options.intraop_workers.max(1),
                ) {
                    Some(lml) => -lml,
                    None => f64::MAX / 4.0,
                };
            }
            let trial = trial_gp.get_or_insert_with(|| {
                GaussianProcess::new(gp_ref.kernel().clone_box(), gp_ref.noise_variance())
            });
            trial.kernel_mut().set_params(kernel_part);
            if let Some(&log_noise) = noise_part.first() {
                trial.set_noise_variance(log_noise.exp().clamp(1e-8, 1.0));
            }
            match trial.log_marginal_likelihood(x, y) {
                Ok(lml) => -lml,
                Err(_) => f64::MAX / 4.0,
            }
        };
        nelder_mead(&mut objective, start, 0.5, options.max_iters, options.tol)
    };

    let workers = match options.workers {
        0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
        w => w,
    }
    .clamp(1, starts.len());
    let mut results: Vec<Option<(Vec<f64>, f64, usize)>> = starts.iter().map(|_| None).collect();
    if workers <= 1 {
        for (slot, start) in results.iter_mut().zip(starts.iter()) {
            *slot = Some(run_start(start));
        }
    } else {
        // Contiguous chunks, one per worker; result slots keep the restart order.
        let chunk = starts.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (slot_chunk, start_chunk) in results.chunks_mut(chunk).zip(starts.chunks(chunk)) {
                let run_start = &run_start;
                scope.spawn(move || {
                    for (slot, start) in slot_chunk.iter_mut().zip(start_chunk.iter()) {
                        *slot = Some(run_start(start));
                    }
                });
            }
        });
    }

    // Index-ordered argmin with a strict `<` — exactly the fold the serial loop
    // performed, so the winner (and every tie-break) is worker-count independent.
    let mut best_params = initial.clone();
    let mut best_neg = -baseline_lml;
    let mut total_evals = 0;
    for (xopt, fopt, evals) in results.into_iter().flatten() {
        total_evals += evals;
        if fopt < best_neg {
            best_neg = fopt;
            best_params = xopt;
        }
    }

    // Apply the best parameters found (which may be the originals) and refit.
    let (kernel_part, noise_part) = if options.optimize_noise {
        best_params.split_at(n_kernel)
    } else {
        (&best_params[..], &[][..])
    };
    gp.kernel_mut().set_params(kernel_part);
    if let Some(&log_noise) = noise_part.first() {
        gp.set_noise_variance(log_noise.exp().clamp(1e-8, 1.0));
    }
    let _ = gp.fit(x, y);

    let report = HyperOptReport {
        best_lml: -best_neg,
        evaluations: total_evals,
        improved: -best_neg > baseline_lml + 1e-9,
    };
    let t = gp.telemetry();
    t.end_span(telemetry::SpanId::Hyperopt, span);
    t.incr(telemetry::CounterId::HyperoptRuns);
    t.add(
        telemetry::CounterId::HyperoptEvaluations,
        report.evaluations as u64,
    );
    if report.improved {
        t.incr(telemetry::CounterId::HyperoptImproved);
    }
    if t.is_enabled() {
        t.event(
            telemetry::EventKind::HyperoptRestart,
            "gp",
            &format!(
                "n={} restarts={} evaluations={} best_lml={:.6} improved={}",
                x.len(),
                options.restarts,
                report.evaluations,
                report.best_lml,
                report.improved
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Matern52Kernel, RbfKernel, ScaledKernel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nelder_mead_minimizes_quadratic() {
        let mut f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2) + 2.0;
        let (x, fx, evals) = nelder_mead(&mut f, &[0.0, 0.0], 1.0, 200, 1e-10);
        assert!((x[0] - 3.0).abs() < 1e-3, "{x:?}");
        assert!((x[1] + 1.0).abs() < 1e-3, "{x:?}");
        assert!((fx - 2.0).abs() < 1e-5);
        assert!(evals > 0);
    }

    #[test]
    fn nelder_mead_handles_rosenbrock_reasonably() {
        let mut f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let (x, fx, _) = nelder_mead(&mut f, &[-1.0, 1.0], 0.5, 500, 1e-12);
        assert!(fx < 0.5, "fx = {fx}, x = {x:?}");
    }

    #[test]
    fn nelder_mead_empty_input() {
        let mut f = |_: &[f64]| 7.0;
        let (x, fx, _) = nelder_mead(&mut f, &[], 1.0, 10, 1e-6);
        assert!(x.is_empty());
        assert_eq!(fx, 7.0);
    }

    #[test]
    fn nelder_mead_survives_nan_objective() {
        let mut f = |x: &[f64]| {
            if x[0] < 0.0 {
                f64::NAN
            } else {
                (x[0] - 2.0).powi(2)
            }
        };
        let (x, _, _) = nelder_mead(&mut f, &[1.0], 0.5, 100, 1e-8);
        assert!((x[0] - 2.0).abs() < 1e-2);
    }

    #[test]
    fn hyperopt_improves_a_badly_initialized_lengthscale() {
        // Smooth function, but the GP starts with a ridiculously short lengthscale.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (2.0 * x[0]).sin() * 5.0 + 10.0).collect();
        let mut gp = GaussianProcess::new(
            Box::new(ScaledKernel::new(Box::new(RbfKernel::new(0.005)), 1.0)),
            1e-3,
        );
        let before = gp.log_marginal_likelihood(&xs, &ys).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let report =
            optimize_hyperparameters(&mut gp, &xs, &ys, &HyperOptOptions::default(), &mut rng);
        assert!(
            report.best_lml > before,
            "{} vs {}",
            report.best_lml,
            before
        );
        assert!(report.improved);
        assert!(gp.is_fitted());
        // The tuned model should now generalize decently between training points.
        let p = gp.predict(&[0.525]).unwrap();
        let truth = (2.0f64 * 0.525).sin() * 5.0 + 10.0;
        assert!((p.mean - truth).abs() < 0.5, "{} vs {}", p.mean, truth);
    }

    #[test]
    fn distance_cached_hyperopt_picks_identical_hyperparameters() {
        // The cached objective must be bit-identical to the uncached one, so the simplex
        // search — driven by the same RNG stream — must select the same hyper-parameters
        // and report the same likelihood, for both a plain scaled-Matérn kernel and the
        // additive contextual kernel (whose cache mixes distances and dot products).
        let kernels: Vec<Box<dyn crate::kernels::Kernel>> = vec![
            Box::new(ScaledKernel::new(Box::new(Matern52Kernel::new(0.25)), 1.0)),
            Box::new(crate::kernels::AdditiveContextKernel::new(2)),
        ];
        for kernel in kernels {
            let xs: Vec<Vec<f64>> = (0..18)
                .map(|i| {
                    let t = i as f64 / 17.0;
                    vec![t, (t * 5.0).sin() * 0.5 + 0.5, 1.0 - t]
                })
                .collect();
            let ys: Vec<f64> = xs
                .iter()
                .map(|x| (3.0 * x[0]).sin() * 4.0 + x[2] * 2.0)
                .collect();
            let run = |use_cache: bool| {
                let mut gp = GaussianProcess::new(kernel.clone_box(), 1e-3);
                let mut rng = StdRng::seed_from_u64(11);
                let report = optimize_hyperparameters(
                    &mut gp,
                    &xs,
                    &ys,
                    &HyperOptOptions {
                        use_distance_cache: use_cache,
                        ..Default::default()
                    },
                    &mut rng,
                );
                (gp.kernel().params(), gp.noise_variance(), report)
            };
            let (params_cached, noise_cached, report_cached) = run(true);
            let (params_plain, noise_plain, report_plain) = run(false);
            assert_eq!(params_cached.len(), params_plain.len());
            for (a, b) in params_cached.iter().zip(params_plain.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "kernel {}", kernel.name());
            }
            assert_eq!(noise_cached.to_bits(), noise_plain.to_bits());
            assert_eq!(
                report_cached.best_lml.to_bits(),
                report_plain.best_lml.to_bits()
            );
            assert_eq!(report_cached.evaluations, report_plain.evaluations);
            assert_eq!(report_cached.improved, report_plain.improved);
        }
    }

    /// Runs one optimization with the given restart-worker and intra-op grants on a
    /// fixed problem and returns everything the determinism contract covers.
    fn run_with_workers(
        workers: usize,
        intraop: usize,
        restarts: usize,
        seed: u64,
        data: &[(Vec<f64>, f64)],
    ) -> (Vec<f64>, f64, HyperOptReport) {
        let xs: Vec<Vec<f64>> = data.iter().map(|(x, _)| x.clone()).collect();
        let ys: Vec<f64> = data.iter().map(|(_, y)| *y).collect();
        let mut gp = GaussianProcess::new(
            Box::new(ScaledKernel::new(Box::new(Matern52Kernel::new(0.3)), 1.0)),
            1e-3,
        );
        gp.set_intraop_workers(intraop);
        let mut rng = StdRng::seed_from_u64(seed);
        let report = optimize_hyperparameters(
            &mut gp,
            &xs,
            &ys,
            &HyperOptOptions {
                restarts,
                max_iters: 40,
                workers,
                intraop_workers: intraop,
                ..Default::default()
            },
            &mut rng,
        );
        (gp.kernel().params(), gp.noise_variance(), report)
    }

    #[test]
    fn parallel_restarts_select_bit_identical_hyperparameters() {
        let data: Vec<(Vec<f64>, f64)> = (0..24)
            .map(|i| {
                let t = i as f64 / 23.0;
                (vec![t, (4.0 * t).cos()], (3.0 * t).sin() * 5.0 + t)
            })
            .collect();
        let (params_serial, noise_serial, report_serial) = run_with_workers(1, 1, 5, 13, &data);
        for (workers, intraop) in [(2usize, 1usize), (4, 2), (0, 4), (1, 4), (2, 0)] {
            let (params, noise, report) = run_with_workers(workers, intraop, 5, 13, &data);
            assert_eq!(params.len(), params_serial.len());
            for (a, b) in params.iter().zip(params_serial.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
            }
            assert_eq!(noise.to_bits(), noise_serial.to_bits(), "workers={workers}");
            assert_eq!(
                report.best_lml.to_bits(),
                report_serial.best_lml.to_bits(),
                "workers={workers}"
            );
            assert_eq!(report.evaluations, report_serial.evaluations);
            assert_eq!(report.improved, report_serial.improved);
        }
    }

    #[test]
    fn reference_factorization_selects_identical_hyperparameters() {
        // The blocked factorization is bit-identical to the reference, so flipping the
        // benchmark switch must not change anything the optimizer selects.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (2.5 * x[0]).sin() * 3.0).collect();
        let run = |reference: bool| {
            let mut gp = GaussianProcess::new(
                Box::new(ScaledKernel::new(Box::new(RbfKernel::new(0.2)), 1.0)),
                1e-3,
            );
            let mut rng = StdRng::seed_from_u64(5);
            let report = optimize_hyperparameters(
                &mut gp,
                &xs,
                &ys,
                &HyperOptOptions {
                    use_reference_factorization: reference,
                    ..Default::default()
                },
                &mut rng,
            );
            (gp.kernel().params(), gp.noise_variance(), report)
        };
        let (pa, na, ra) = run(false);
        let (pb, nb, rb) = run(true);
        for (a, b) in pa.iter().zip(pb.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(na.to_bits(), nb.to_bits());
        assert_eq!(ra.best_lml.to_bits(), rb.best_lml.to_bits());
        assert_eq!(ra.evaluations, rb.evaluations);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            /// The determinism contract of `HyperOptOptions::{workers, intraop_workers}`:
            /// on random data, restart counts and seeds, the selected hyper-parameters,
            /// noise, reported likelihood and evaluation count are bit-identical across
            /// the restart-worker × intra-op grid {1,2,4} × {1,2,4}.
            #[test]
            fn prop_hyperopt_bit_identical_across_worker_counts(
                raw in proptest::collection::vec(
                    (proptest::collection::vec(-1.0f64..1.0, 2), -5.0f64..5.0), 6..20),
                restarts in 1usize..5,
                seed in 0u64..500,
            ) {
                let serial = run_with_workers(1, 1, restarts, seed, &raw);
                for (workers, intraop) in [(2usize, 1usize), (4, 1), (1, 2), (2, 2), (4, 4), (1, 4)] {
                    let parallel = run_with_workers(workers, intraop, restarts, seed, &raw);
                    prop_assert_eq!(parallel.0.len(), serial.0.len());
                    for (a, b) in parallel.0.iter().zip(serial.0.iter()) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                    prop_assert_eq!(parallel.1.to_bits(), serial.1.to_bits());
                    prop_assert_eq!(
                        parallel.2.best_lml.to_bits(),
                        serial.2.best_lml.to_bits()
                    );
                    prop_assert_eq!(parallel.2.evaluations, serial.2.evaluations);
                }
            }
        }
    }

    #[test]
    fn hyperopt_never_degrades_the_likelihood() {
        let xs: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64 / 14.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
        let mut gp = GaussianProcess::new(
            Box::new(ScaledKernel::new(Box::new(Matern52Kernel::new(0.3)), 1.0)),
            1e-4,
        );
        let before = gp.log_marginal_likelihood(&xs, &ys).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let report =
            optimize_hyperparameters(&mut gp, &xs, &ys, &HyperOptOptions::default(), &mut rng);
        assert!(report.best_lml + 1e-9 >= before);
    }
}
