//! Covariance functions (kernels) for Gaussian-process regression.
//!
//! OnlineTune's contextual surrogate (paper §5.2) uses an **additive kernel**
//! `k((θ, c), (θ', c')) = k_Θ(θ, θ') + k_C(c, c')` with a Matérn kernel over
//! configurations and a linear kernel over contexts, so that the model captures an overall
//! trend driven by the context plus a configuration-specific deviation from that trend.
//!
//! All kernels expose their hyper-parameters in **log space** through [`Kernel::params`] /
//! [`Kernel::set_params`], which makes the marginal-likelihood optimization in
//! [`crate::hyperopt`] an unconstrained problem.

use linalg::vecops::{dot, squared_distance};
use linalg::Matrix;

/// A positive semi-definite covariance function over `R^d`.
pub trait Kernel: Send + Sync {
    /// Evaluates the kernel at a pair of points.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// Batch entry point: evaluates the kernel of every query point against every
    /// training point into a `queries.len() × train.len()` matrix whose entry `(q, i)`
    /// is `eval(&train[i], &queries[q])` — the same argument order the scalar
    /// prediction path uses.
    ///
    /// The default implementation is the scalar fallback. Implementations that exploit
    /// structure shared across queries (see [`AdditiveContextKernel`]) must stay
    /// **bit-identical** to the fallback: batched prediction is contractually
    /// indistinguishable from per-point prediction.
    fn eval_cross(&self, train: &[Vec<f64>], queries: &[Vec<f64>]) -> Matrix {
        Matrix::from_fn(queries.len(), train.len(), |q, i| {
            self.eval(&train[i], &queries[q])
        })
    }

    /// Number of hyper-parameter-invariant pairwise statistics this kernel can be
    /// evaluated from (see [`Kernel::pair_stats`] / [`Kernel::eval_stats`]).
    /// 0 means cached evaluation is unsupported.
    fn n_pair_stats(&self) -> usize {
        0
    }

    /// Computes the hyper-parameter-invariant statistics of a pair into `out`
    /// (`out.len() == n_pair_stats()`): the squared distance for distance kernels, the
    /// dot product for linear kernels. The statistics depend only on the data, never on
    /// the hyper-parameters, so a Gram matrix can be re-evaluated from cached
    /// statistics after every hyper-parameter change in `O(n²)` instead of `O(n²·d)`
    /// (the hyper-parameter-optimization hot loop, see [`crate::hyperopt`]).
    fn pair_stats(&self, _a: &[f64], _b: &[f64], _out: &mut [f64]) {}

    /// Evaluates the kernel from statistics produced by [`Kernel::pair_stats`] on the
    /// same pair. Must be bit-identical to [`Kernel::eval`] on that pair. Only called
    /// when [`Kernel::n_pair_stats`] is non-zero.
    fn eval_stats(&self, _stats: &[f64]) -> f64 {
        unreachable!("eval_stats called on a kernel without pair-stat support")
    }

    /// Returns the hyper-parameters in log space (empty when the kernel has none).
    fn params(&self) -> Vec<f64>;

    /// Sets the hyper-parameters from log-space values produced by [`Kernel::params`].
    fn set_params(&mut self, p: &[f64]);

    /// Number of hyper-parameters.
    fn n_params(&self) -> usize {
        self.params().len()
    }

    /// Clones the kernel behind a `Box`, preserving the concrete type.
    fn clone_box(&self) -> Box<dyn Kernel>;

    /// A short human-readable name used in diagnostics.
    fn name(&self) -> &'static str;
}

impl Clone for Box<dyn Kernel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Matérn-5/2 kernel with a single (isotropic) lengthscale and unit variance.
///
/// `k(a, b) = (1 + √5 r / ℓ + 5 r² / (3 ℓ²)) · exp(-√5 r / ℓ)`
///
/// The Matérn-5/2 kernel is the standard choice for configuration-tuning surrogates
/// (OtterTune, ResTune, and the "Martin kernel" referenced by the paper): it is twice
/// differentiable but does not impose the unrealistic infinite smoothness of the RBF.
#[derive(Debug, Clone)]
pub struct Matern52Kernel {
    lengthscale: f64,
}

impl Matern52Kernel {
    /// Creates the kernel with the given lengthscale (must be positive).
    pub fn new(lengthscale: f64) -> Self {
        assert!(lengthscale > 0.0, "lengthscale must be positive");
        Matern52Kernel { lengthscale }
    }

    /// Current lengthscale.
    pub fn lengthscale(&self) -> f64 {
        self.lengthscale
    }
}

impl Kernel for Matern52Kernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let r = squared_distance(a, b).sqrt();
        let s = 5f64.sqrt() * r / self.lengthscale;
        (1.0 + s + s * s / 3.0) * (-s).exp()
    }

    fn n_pair_stats(&self) -> usize {
        1
    }

    fn pair_stats(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        out[0] = squared_distance(a, b);
    }

    fn eval_stats(&self, stats: &[f64]) -> f64 {
        let r = stats[0].sqrt();
        let s = 5f64.sqrt() * r / self.lengthscale;
        (1.0 + s + s * s / 3.0) * (-s).exp()
    }

    fn params(&self) -> Vec<f64> {
        vec![self.lengthscale.ln()]
    }

    fn set_params(&mut self, p: &[f64]) {
        if let Some(&l) = p.first() {
            self.lengthscale = l.exp().clamp(1e-4, 1e4);
        }
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "matern52"
    }
}

/// Squared-exponential (RBF) kernel with a single lengthscale and unit variance.
#[derive(Debug, Clone)]
pub struct RbfKernel {
    lengthscale: f64,
}

impl RbfKernel {
    /// Creates the kernel with the given lengthscale (must be positive).
    pub fn new(lengthscale: f64) -> Self {
        assert!(lengthscale > 0.0, "lengthscale must be positive");
        RbfKernel { lengthscale }
    }
}

impl Kernel for RbfKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2 = squared_distance(a, b);
        (-0.5 * d2 / (self.lengthscale * self.lengthscale)).exp()
    }

    fn n_pair_stats(&self) -> usize {
        1
    }

    fn pair_stats(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        out[0] = squared_distance(a, b);
    }

    fn eval_stats(&self, stats: &[f64]) -> f64 {
        (-0.5 * stats[0] / (self.lengthscale * self.lengthscale)).exp()
    }

    fn params(&self) -> Vec<f64> {
        vec![self.lengthscale.ln()]
    }

    fn set_params(&mut self, p: &[f64]) {
        if let Some(&l) = p.first() {
            self.lengthscale = l.exp().clamp(1e-4, 1e4);
        }
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "rbf"
    }
}

/// Linear (dot-product) kernel `k(a, b) = σ² (aᵀb + c)`.
///
/// Used over the context dimensions: the paper models the context-driven trend linearly so
/// knowledge transfers smoothly between nearby contexts.
#[derive(Debug, Clone)]
pub struct LinearKernel {
    variance: f64,
    bias: f64,
}

impl LinearKernel {
    /// Creates the kernel with the given variance and bias (both must be positive).
    pub fn new(variance: f64, bias: f64) -> Self {
        assert!(variance > 0.0 && bias >= 0.0);
        LinearKernel { variance, bias }
    }
}

impl Kernel for LinearKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.variance * (dot(a, b) + self.bias)
    }

    fn n_pair_stats(&self) -> usize {
        1
    }

    fn pair_stats(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        out[0] = dot(a, b);
    }

    fn eval_stats(&self, stats: &[f64]) -> f64 {
        self.variance * (stats[0] + self.bias)
    }

    fn params(&self) -> Vec<f64> {
        vec![self.variance.ln()]
    }

    fn set_params(&mut self, p: &[f64]) {
        if let Some(&v) = p.first() {
            self.variance = v.exp().clamp(1e-6, 1e4);
        }
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

/// Multiplies an inner kernel by a signal variance: `k(a, b) = σ_f² · k_inner(a, b)`.
#[derive(Clone)]
pub struct ScaledKernel {
    inner: Box<dyn Kernel>,
    signal_variance: f64,
}

impl ScaledKernel {
    /// Wraps `inner` with a signal variance.
    pub fn new(inner: Box<dyn Kernel>, signal_variance: f64) -> Self {
        assert!(signal_variance > 0.0);
        ScaledKernel {
            inner,
            signal_variance,
        }
    }

    /// Current signal variance.
    pub fn signal_variance(&self) -> f64 {
        self.signal_variance
    }
}

impl Kernel for ScaledKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.signal_variance * self.inner.eval(a, b)
    }

    fn n_pair_stats(&self) -> usize {
        self.inner.n_pair_stats()
    }

    fn pair_stats(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        self.inner.pair_stats(a, b, out);
    }

    fn eval_stats(&self, stats: &[f64]) -> f64 {
        self.signal_variance * self.inner.eval_stats(stats)
    }

    fn params(&self) -> Vec<f64> {
        let mut p = vec![self.signal_variance.ln()];
        p.extend(self.inner.params());
        p
    }

    fn set_params(&mut self, p: &[f64]) {
        if let Some(&v) = p.first() {
            self.signal_variance = v.exp().clamp(1e-6, 1e6);
        }
        if p.len() > 1 {
            self.inner.set_params(&p[1..]);
        }
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "scaled"
    }
}

/// The additive contextual kernel from §5.2 of the paper.
///
/// Inputs are joint vectors `[θ_1..θ_m, c_1..c_k]` where the first `config_dim` entries are
/// the (normalized) configuration and the remainder is the context feature. The kernel is
/// `σ_Θ² · Matérn52(θ, θ') + σ_C² · Linear(c, c')`.
#[derive(Clone)]
pub struct AdditiveContextKernel {
    config_dim: usize,
    config_kernel: ScaledKernel,
    context_kernel: LinearKernel,
}

impl AdditiveContextKernel {
    /// Creates the kernel for `config_dim` configuration dimensions. Any further dimensions
    /// of the input vectors are treated as context.
    pub fn new(config_dim: usize) -> Self {
        AdditiveContextKernel {
            config_dim,
            config_kernel: ScaledKernel::new(Box::new(Matern52Kernel::new(0.3)), 1.0),
            context_kernel: LinearKernel::new(0.5, 0.1),
        }
    }

    /// Number of configuration dimensions expected at the front of each input vector.
    pub fn config_dim(&self) -> usize {
        self.config_dim
    }

    fn split<'a>(&self, x: &'a [f64]) -> (&'a [f64], &'a [f64]) {
        let d = self.config_dim.min(x.len());
        x.split_at(d)
    }
}

impl Kernel for AdditiveContextKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let (ta, ca) = self.split(a);
        let (tb, cb) = self.split(b);
        let config_part = self.config_kernel.eval(ta, tb);
        let context_part = if ca.is_empty() {
            0.0
        } else {
            self.context_kernel.eval(ca, cb)
        };
        config_part + context_part
    }

    /// Batched cross-kernel exploiting the additive structure: when every query carries
    /// the same context — the suggest sweep, where `C` candidate configurations are all
    /// evaluated under the current context — the context column `k_C(c, cᵢ)` is computed
    /// **once** per training point and shared across all queries, dropping the kernel
    /// cost from `O(C·n·(d_θ + d_c))` to `O(n·d_c + C·n·d_θ)`.
    ///
    /// Bit-identity with the scalar fallback holds because the shared context column is
    /// produced by exactly the evaluation the scalar path would perform (identical
    /// inputs, identical operations), and floating-point evaluation is deterministic.
    /// Queries with differing contexts fall back to the pairwise sweep.
    fn eval_cross(&self, train: &[Vec<f64>], queries: &[Vec<f64>]) -> Matrix {
        let shared_context = match queries.split_first() {
            Some((first, rest)) => {
                let (_, c0) = self.split(first);
                rest.iter().all(|q| {
                    let (_, c) = self.split(q);
                    c == c0
                })
            }
            // An empty batch has no context to share; the pairwise fallback returns the
            // empty matrix without ever indexing into `queries`.
            None => false,
        };
        if !shared_context {
            return Matrix::from_fn(queries.len(), train.len(), |q, i| {
                self.eval(&train[i], &queries[q])
            });
        }
        // The context column, computed once per training point. The emptiness check
        // mirrors `eval`, which keys on the *training* point's context slice.
        let context_col: Vec<f64> = train
            .iter()
            .map(|t| {
                let (_, ct) = self.split(t);
                if ct.is_empty() {
                    0.0
                } else {
                    let (_, cq) = self.split(&queries[0]);
                    self.context_kernel.eval(ct, cq)
                }
            })
            .collect();
        let mut out = Matrix::zeros(queries.len(), train.len());
        for (q, query) in queries.iter().enumerate() {
            let (tq, _) = self.split(query);
            for (i, t) in train.iter().enumerate() {
                let (tt, _) = self.split(t);
                out.set(q, i, self.config_kernel.eval(tt, tq) + context_col[i]);
            }
        }
        out
    }

    fn n_pair_stats(&self) -> usize {
        // Configuration stats + context stats + the context-emptiness flag `eval` keys on.
        self.config_kernel.n_pair_stats() + self.context_kernel.n_pair_stats() + 1
    }

    fn pair_stats(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        let (ta, ca) = self.split(a);
        let (tb, cb) = self.split(b);
        let nc = self.config_kernel.n_pair_stats();
        let nk = self.context_kernel.n_pair_stats();
        self.config_kernel.pair_stats(ta, tb, &mut out[..nc]);
        self.context_kernel
            .pair_stats(ca, cb, &mut out[nc..nc + nk]);
        out[nc + nk] = if ca.is_empty() { 0.0 } else { 1.0 };
    }

    fn eval_stats(&self, stats: &[f64]) -> f64 {
        let nc = self.config_kernel.n_pair_stats();
        let nk = self.context_kernel.n_pair_stats();
        let config_part = self.config_kernel.eval_stats(&stats[..nc]);
        let context_part = if stats[nc + nk] == 0.0 {
            0.0
        } else {
            self.context_kernel.eval_stats(&stats[nc..nc + nk])
        };
        config_part + context_part
    }

    fn params(&self) -> Vec<f64> {
        let mut p = self.config_kernel.params();
        p.extend(self.context_kernel.params());
        p
    }

    fn set_params(&mut self, p: &[f64]) {
        let nc = self.config_kernel.n_params();
        self.config_kernel.set_params(&p[..nc.min(p.len())]);
        if p.len() > nc {
            self.context_kernel.set_params(&p[nc..]);
        }
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "additive-context"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matern_is_one_at_zero_distance_and_decays() {
        let k = Matern52Kernel::new(0.5);
        let a = [0.1, 0.2];
        assert!((k.eval(&a, &a) - 1.0).abs() < 1e-12);
        let near = k.eval(&a, &[0.15, 0.2]);
        let far = k.eval(&a, &[0.9, 0.9]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn matern_symmetry() {
        let k = Matern52Kernel::new(0.7);
        let a = [0.3, 0.9, 0.1];
        let b = [0.5, 0.2, 0.8];
        assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn rbf_matches_closed_form() {
        let k = RbfKernel::new(1.0);
        let v = k.eval(&[0.0], &[1.0]);
        assert!((v - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn linear_kernel_uses_dot_product() {
        let k = LinearKernel::new(2.0, 0.5);
        assert!((k.eval(&[1.0, 2.0], &[3.0, 4.0]) - 2.0 * (11.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn scaled_kernel_scales() {
        let base = Matern52Kernel::new(0.5);
        let a = [0.1, 0.9];
        let b = [0.4, 0.2];
        let scaled = ScaledKernel::new(Box::new(base.clone()), 3.0);
        assert!((scaled.eval(&a, &b) - 3.0 * base.eval(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn params_roundtrip_for_all_kernels() {
        let mut kernels: Vec<Box<dyn Kernel>> = vec![
            Box::new(Matern52Kernel::new(0.42)),
            Box::new(RbfKernel::new(1.7)),
            Box::new(LinearKernel::new(0.9, 0.1)),
            Box::new(ScaledKernel::new(Box::new(Matern52Kernel::new(0.3)), 2.0)),
            Box::new(AdditiveContextKernel::new(3)),
        ];
        for k in kernels.iter_mut() {
            let p = k.params();
            assert_eq!(p.len(), k.n_params());
            let before = k.eval(&[0.1, 0.2, 0.3, 0.4], &[0.5, 0.6, 0.7, 0.8]);
            let p2 = p.clone();
            k.set_params(&p2);
            let after = k.eval(&[0.1, 0.2, 0.3, 0.4], &[0.5, 0.6, 0.7, 0.8]);
            assert!(
                (before - after).abs() < 1e-9,
                "{} changed value after no-op param roundtrip",
                k.name()
            );
        }
    }

    #[test]
    fn additive_kernel_adds_context_similarity() {
        let k = AdditiveContextKernel::new(2);
        // Same configuration, different context: contextual part differs.
        let a = [0.5, 0.5, 1.0];
        let b_same_ctx = [0.5, 0.5, 1.0];
        let b_diff_ctx = [0.5, 0.5, 0.0];
        assert!(k.eval(&a, &b_same_ctx) > k.eval(&a, &b_diff_ctx));
        // Same context, different configuration: configuration part differs.
        let c_near = [0.5, 0.5, 1.0];
        let c_far = [0.0, 1.0, 1.0];
        assert!(k.eval(&a, &c_near) > k.eval(&a, &c_far));
    }

    #[test]
    fn additive_kernel_without_context_dims_is_config_only() {
        let k = AdditiveContextKernel::new(2);
        let a = [0.5, 0.5];
        let b = [0.2, 0.8];
        let cfg_only = ScaledKernel::new(Box::new(Matern52Kernel::new(0.3)), 1.0);
        assert!((k.eval(&a, &b) - cfg_only.eval(&a, &b)).abs() < 1e-12);
    }

    fn all_kernels() -> Vec<Box<dyn Kernel>> {
        vec![
            Box::new(Matern52Kernel::new(0.42)),
            Box::new(RbfKernel::new(1.7)),
            Box::new(LinearKernel::new(0.9, 0.1)),
            Box::new(ScaledKernel::new(Box::new(Matern52Kernel::new(0.3)), 2.0)),
            Box::new(AdditiveContextKernel::new(2)),
        ]
    }

    #[test]
    fn eval_cross_matches_scalar_eval_bitwise() {
        let train: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..4).map(|j| (i * 4 + j) as f64 * 0.13 - 1.0).collect())
            .collect();
        // Shared context across queries (exercises the additive kernel's shared-context
        // fast path) and a mixed-context batch (exercises its fallback).
        let shared: Vec<Vec<f64>> = (0..5)
            .map(|q| vec![q as f64 * 0.2, 0.3 - q as f64 * 0.1, 0.7, 0.4])
            .collect();
        let mixed: Vec<Vec<f64>> = (0..5)
            .map(|q| (0..4).map(|j| (q * 3 + j) as f64 * 0.17 - 0.5).collect())
            .collect();
        for k in all_kernels() {
            for queries in [&shared, &mixed] {
                let cross = k.eval_cross(&train, queries);
                assert_eq!(cross.rows(), queries.len());
                assert_eq!(cross.cols(), train.len());
                for (q, query) in queries.iter().enumerate() {
                    for (i, t) in train.iter().enumerate() {
                        assert_eq!(
                            cross.get(q, i).to_bits(),
                            k.eval(t, query).to_bits(),
                            "{} ({q},{i})",
                            k.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn eval_cross_handles_empty_batches() {
        let k = AdditiveContextKernel::new(2);
        let train = vec![vec![0.1, 0.2, 0.3]];
        assert_eq!(k.eval_cross(&train, &[]).rows(), 0);
        assert_eq!(k.eval_cross(&[], &train).cols(), 0);
    }

    #[test]
    fn pair_stats_evaluation_matches_eval_bitwise_across_hyperparams() {
        let a = vec![0.15, -0.4, 0.8, 0.33];
        let b = vec![-0.2, 0.5, 0.12, 0.9];
        for mut k in all_kernels() {
            let n = k.n_pair_stats();
            assert!(n > 0, "{} should support cached evaluation", k.name());
            let mut stats = vec![0.0; n];
            k.pair_stats(&a, &b, &mut stats);
            // The statistics are hyper-parameter invariant: re-evaluating after a
            // hyper-parameter change must still agree with `eval` bit-for-bit.
            for shift in [0.0, 0.7, -1.1] {
                let p: Vec<f64> = k.params().iter().map(|v| v + shift).collect();
                k.set_params(&p);
                assert_eq!(
                    k.eval_stats(&stats).to_bits(),
                    k.eval(&a, &b).to_bits(),
                    "{} with shift {shift}",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn additive_pair_stats_respect_missing_context() {
        // Inputs without context dimensions: the cached path must reproduce the scalar
        // eval's empty-context special case (no bias term), not evaluate the linear
        // kernel on empty slices.
        let k = AdditiveContextKernel::new(2);
        let a = vec![0.5, 0.5];
        let b = vec![0.2, 0.8];
        let mut stats = vec![0.0; k.n_pair_stats()];
        k.pair_stats(&a, &b, &mut stats);
        assert_eq!(k.eval_stats(&stats).to_bits(), k.eval(&a, &b).to_bits());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_matern_bounded_and_symmetric(
                a in proptest::collection::vec(-3.0f64..3.0, 4),
                b in proptest::collection::vec(-3.0f64..3.0, 4),
                ls in 0.05f64..5.0,
            ) {
                let k = Matern52Kernel::new(ls);
                let kab = k.eval(&a, &b);
                prop_assert!(kab <= 1.0 + 1e-12);
                prop_assert!(kab >= 0.0);
                prop_assert!((kab - k.eval(&b, &a)).abs() < 1e-12);
            }

            #[test]
            fn prop_gram_matrix_is_psd(
                xs in proptest::collection::vec(proptest::collection::vec(-2.0f64..2.0, 3), 2..8),
                ls in 0.1f64..3.0,
            ) {
                // A valid kernel must produce a positive semi-definite Gram matrix; adding a
                // small diagonal makes it positive definite, so Cholesky must succeed.
                let k = Matern52Kernel::new(ls);
                let n = xs.len();
                let mut gram = linalg::Matrix::from_fn(n, n, |i, j| k.eval(&xs[i], &xs[j]));
                gram.add_diagonal(1e-8).unwrap();
                prop_assert!(linalg::Cholesky::decompose_with_jitter(&gram, 1e-3).is_ok());
            }
        }
    }
}
