//! Exact Gaussian-process regression (Eq. 2 of the paper).
//!
//! The model is `y = f(x) + ε`, `ε ~ N(0, σ²)`, with `f ~ GP(0, k)`. Training amounts to a
//! single Cholesky factorization of `K + σ²I`; prediction of mean and variance at a query
//! point costs one triangular solve. Outputs are standardized internally so the zero-mean
//! prior is reasonable regardless of the metric being tuned (throughput, latency, ...).

use crate::kernels::Kernel;
use crate::normalize::Standardizer;
use linalg::{Cholesky, Matrix};

/// Errors produced by GP fitting or prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// `fit` was called with no observations.
    EmptyTrainingSet,
    /// The number of targets does not match the number of inputs.
    LengthMismatch {
        /// Number of input rows provided.
        inputs: usize,
        /// Number of target values provided.
        targets: usize,
    },
    /// The kernel matrix could not be factorized even with jitter.
    KernelNotPositiveDefinite,
    /// Prediction was requested before the model was fitted.
    NotFitted,
    /// A query point has a different dimension than the training data.
    DimensionMismatch {
        /// Dimension of the training inputs.
        expected: usize,
        /// Dimension of the query point.
        actual: usize,
    },
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::EmptyTrainingSet => write!(f, "cannot fit a GP with zero observations"),
            GpError::LengthMismatch { inputs, targets } => {
                write!(f, "{inputs} inputs but {targets} targets")
            }
            GpError::KernelNotPositiveDefinite => {
                write!(f, "kernel matrix is not positive definite")
            }
            GpError::NotFitted => write!(f, "the GP has not been fitted yet"),
            GpError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "query dimension {actual} does not match training dimension {expected}"
                )
            }
        }
    }
}

impl std::error::Error for GpError {}

/// Posterior prediction at a single point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posterior {
    /// Posterior mean in the original (un-standardized) output units.
    pub mean: f64,
    /// Posterior standard deviation in the original output units.
    pub std_dev: f64,
}

impl Posterior {
    /// Posterior variance.
    pub fn variance(&self) -> f64 {
        self.std_dev * self.std_dev
    }
}

struct FittedState {
    chol: Cholesky,
    /// `(K + σ²I)^{-1} y` in standardized output space.
    alpha: Vec<f64>,
    x: Vec<Vec<f64>>,
    standardizer: Standardizer,
    dim: usize,
}

/// An exact Gaussian-process regressor.
pub struct GaussianProcess {
    kernel: Box<dyn Kernel>,
    noise_variance: f64,
    fitted: Option<FittedState>,
}

impl Clone for GaussianProcess {
    fn clone(&self) -> Self {
        // Refitting is cheap relative to cloning the factorization state, and cloning is only
        // used when spawning per-cluster models, which are refitted immediately anyway.
        GaussianProcess {
            kernel: self.kernel.clone(),
            noise_variance: self.noise_variance,
            fitted: None,
        }
    }
}

impl GaussianProcess {
    /// Creates an unfitted GP with the given kernel and observation-noise variance
    /// (in standardized output units).
    pub fn new(kernel: Box<dyn Kernel>, noise_variance: f64) -> Self {
        assert!(noise_variance > 0.0, "noise variance must be positive");
        GaussianProcess {
            kernel,
            noise_variance,
            fitted: None,
        }
    }

    /// Observation-noise variance.
    pub fn noise_variance(&self) -> f64 {
        self.noise_variance
    }

    /// Sets the observation-noise variance (clamped to a small positive floor) and
    /// invalidates any previous fit.
    pub fn set_noise_variance(&mut self, v: f64) {
        self.noise_variance = v.max(1e-8);
        self.fitted = None;
    }

    /// Immutable access to the kernel.
    pub fn kernel(&self) -> &dyn Kernel {
        self.kernel.as_ref()
    }

    /// Mutable access to the kernel (invalidates the fit).
    pub fn kernel_mut(&mut self) -> &mut Box<dyn Kernel> {
        self.fitted = None;
        &mut self.kernel
    }

    /// Number of training observations in the current fit (0 when unfitted).
    pub fn n_observations(&self) -> usize {
        self.fitted.as_ref().map_or(0, |s| s.x.len())
    }

    /// Whether `fit` has been called successfully.
    pub fn is_fitted(&self) -> bool {
        self.fitted.is_some()
    }

    /// Fits the GP to the given inputs and targets.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), GpError> {
        if x.is_empty() {
            return Err(GpError::EmptyTrainingSet);
        }
        if x.len() != y.len() {
            return Err(GpError::LengthMismatch {
                inputs: x.len(),
                targets: y.len(),
            });
        }
        let dim = x[0].len();
        let standardizer = Standardizer::fit(y);
        let y_std: Vec<f64> = y.iter().map(|&v| standardizer.transform(v)).collect();

        let n = x.len();
        let mut k = Matrix::from_fn(n, n, |i, j| self.kernel.eval(&x[i], &x[j]));
        k.add_diagonal(self.noise_variance)
            .expect("gram matrix is square by construction");
        let chol = Cholesky::decompose_with_jitter(&k, 1e-3)
            .map_err(|_| GpError::KernelNotPositiveDefinite)?;
        let alpha = chol
            .solve(&y_std)
            .map_err(|_| GpError::KernelNotPositiveDefinite)?;

        self.fitted = Some(FittedState {
            chol,
            alpha,
            x: x.to_vec(),
            standardizer,
            dim,
        });
        Ok(())
    }

    /// Predicts the posterior mean and standard deviation at a query point.
    pub fn predict(&self, x_star: &[f64]) -> Result<Posterior, GpError> {
        let state = self.fitted.as_ref().ok_or(GpError::NotFitted)?;
        if x_star.len() != state.dim {
            return Err(GpError::DimensionMismatch {
                expected: state.dim,
                actual: x_star.len(),
            });
        }
        let n = state.x.len();
        let k_star: Vec<f64> = (0..n)
            .map(|i| self.kernel.eval(&state.x[i], x_star))
            .collect();

        let mean_std = k_star
            .iter()
            .zip(state.alpha.iter())
            .map(|(k, a)| k * a)
            .sum::<f64>();

        // var = k(x*, x*) - k_*^T (K + σ²I)^{-1} k_*  computed via v = L^{-1} k_*.
        let v = state
            .chol
            .solve_lower(&k_star)
            .map_err(|_| GpError::KernelNotPositiveDefinite)?;
        let prior = self.kernel.eval(x_star, x_star);
        let var_std = (prior - v.iter().map(|vi| vi * vi).sum::<f64>()).max(1e-12);

        Ok(Posterior {
            mean: state.standardizer.inverse(mean_std),
            std_dev: var_std.sqrt() * state.standardizer.scale(),
        })
    }

    /// Predicts at many points at once.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<Posterior>, GpError> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Log marginal likelihood of the given data under the current hyper-parameters.
    ///
    /// Computed in standardized output space; only relative values matter for
    /// hyper-parameter selection.
    pub fn log_marginal_likelihood(&self, x: &[Vec<f64>], y: &[f64]) -> Result<f64, GpError> {
        if x.is_empty() {
            return Err(GpError::EmptyTrainingSet);
        }
        if x.len() != y.len() {
            return Err(GpError::LengthMismatch {
                inputs: x.len(),
                targets: y.len(),
            });
        }
        let standardizer = Standardizer::fit(y);
        let y_std: Vec<f64> = y.iter().map(|&v| standardizer.transform(v)).collect();
        let n = x.len();
        let mut k = Matrix::from_fn(n, n, |i, j| self.kernel.eval(&x[i], &x[j]));
        k.add_diagonal(self.noise_variance)
            .expect("gram matrix is square by construction");
        let chol = Cholesky::decompose_with_jitter(&k, 1e-3)
            .map_err(|_| GpError::KernelNotPositiveDefinite)?;
        let alpha = chol
            .solve(&y_std)
            .map_err(|_| GpError::KernelNotPositiveDefinite)?;
        let data_fit: f64 = y_std.iter().zip(alpha.iter()).map(|(a, b)| a * b).sum();
        let lml = -0.5 * data_fit
            - 0.5 * chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
        Ok(lml)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Matern52Kernel, RbfKernel, ScaledKernel};

    fn sample_problem() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = sin(3x) on [0, 1], 12 evenly spaced points.
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
        (xs, ys)
    }

    fn default_gp() -> GaussianProcess {
        GaussianProcess::new(
            Box::new(ScaledKernel::new(Box::new(Matern52Kernel::new(0.3)), 1.0)),
            1e-4,
        )
    }

    #[test]
    fn fit_then_predict_interpolates_training_points() {
        let (xs, ys) = sample_problem();
        let mut gp = default_gp();
        gp.fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            let p = gp.predict(x).unwrap();
            assert!((p.mean - y).abs() < 0.05, "{} vs {}", p.mean, y);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (xs, ys) = sample_problem();
        let mut gp = default_gp();
        gp.fit(&xs, &ys).unwrap();
        let near = gp.predict(&[0.5]).unwrap();
        let far = gp.predict(&[3.0]).unwrap();
        assert!(far.std_dev > near.std_dev * 2.0);
    }

    #[test]
    fn predict_before_fit_is_an_error() {
        let gp = default_gp();
        assert_eq!(gp.predict(&[0.5]).unwrap_err(), GpError::NotFitted);
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let mut gp = default_gp();
        let err = gp.fit(&[vec![0.0], vec![1.0]], &[1.0]).unwrap_err();
        assert!(matches!(err, GpError::LengthMismatch { .. }));
        assert_eq!(gp.fit(&[], &[]).unwrap_err(), GpError::EmptyTrainingSet);
    }

    #[test]
    fn dimension_mismatch_on_predict() {
        let (xs, ys) = sample_problem();
        let mut gp = default_gp();
        gp.fit(&xs, &ys).unwrap();
        assert!(matches!(
            gp.predict(&[0.1, 0.2]).unwrap_err(),
            GpError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn duplicate_points_are_handled_via_jitter() {
        let xs = vec![vec![0.5], vec![0.5], vec![0.5], vec![0.9]];
        let ys = vec![1.0, 1.01, 0.99, 2.0];
        let mut gp = default_gp();
        gp.fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.5]).unwrap();
        assert!((p.mean - 1.0).abs() < 0.1);
    }

    #[test]
    fn constant_targets_predict_the_constant() {
        let xs = vec![vec![0.1], vec![0.5], vec![0.9]];
        let ys = vec![7.0, 7.0, 7.0];
        let mut gp = default_gp();
        gp.fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.3]).unwrap();
        assert!((p.mean - 7.0).abs() < 1e-6);
    }

    #[test]
    fn log_marginal_likelihood_prefers_sensible_lengthscale() {
        let (xs, ys) = sample_problem();
        let good = GaussianProcess::new(
            Box::new(ScaledKernel::new(Box::new(RbfKernel::new(0.3)), 1.0)),
            1e-4,
        );
        let bad = GaussianProcess::new(
            Box::new(ScaledKernel::new(Box::new(RbfKernel::new(1e-3)), 1.0)),
            1e-4,
        );
        let lml_good = good.log_marginal_likelihood(&xs, &ys).unwrap();
        let lml_bad = bad.log_marginal_likelihood(&xs, &ys).unwrap();
        assert!(lml_good > lml_bad);
    }

    #[test]
    fn posterior_variance_is_nonnegative_everywhere() {
        let (xs, ys) = sample_problem();
        let mut gp = default_gp();
        gp.fit(&xs, &ys).unwrap();
        for i in 0..50 {
            let x = -1.0 + 4.0 * i as f64 / 49.0;
            let p = gp.predict(&[x]).unwrap();
            assert!(p.variance() >= 0.0);
            assert!(p.mean.is_finite());
        }
    }

    #[test]
    fn batch_prediction_matches_pointwise() {
        let (xs, ys) = sample_problem();
        let mut gp = default_gp();
        gp.fit(&xs, &ys).unwrap();
        let queries = vec![vec![0.2], vec![0.7]];
        let batch = gp.predict_batch(&queries).unwrap();
        for (q, b) in queries.iter().zip(batch.iter()) {
            let p = gp.predict(q).unwrap();
            assert_eq!(p, *b);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn prop_predictions_finite_for_random_data(
                raw in proptest::collection::vec((-1.0f64..1.0, -10.0f64..10.0), 3..20),
                q in -2.0f64..2.0,
            ) {
                let xs: Vec<Vec<f64>> = raw.iter().map(|(x, _)| vec![*x]).collect();
                let ys: Vec<f64> = raw.iter().map(|(_, y)| *y).collect();
                let mut gp = default_gp();
                gp.fit(&xs, &ys).unwrap();
                let p = gp.predict(&[q]).unwrap();
                prop_assert!(p.mean.is_finite());
                prop_assert!(p.std_dev.is_finite());
                prop_assert!(p.std_dev >= 0.0);
            }

            #[test]
            fn prop_posterior_mean_within_data_range_at_observed_points(
                raw in proptest::collection::vec((-1.0f64..1.0, 0.0f64..100.0), 4..16),
            ) {
                let xs: Vec<Vec<f64>> = raw.iter().map(|(x, _)| vec![*x]).collect();
                let ys: Vec<f64> = raw.iter().map(|(_, y)| *y).collect();
                let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let span = (hi - lo).max(1.0);
                let mut gp = default_gp();
                gp.fit(&xs, &ys).unwrap();
                for x in &xs {
                    let p = gp.predict(x).unwrap();
                    prop_assert!(p.mean >= lo - span && p.mean <= hi + span);
                }
            }
        }
    }
}
