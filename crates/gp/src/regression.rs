//! Exact Gaussian-process regression (Eq. 2 of the paper).
//!
//! The model is `y = f(x) + ε`, `ε ~ N(0, σ²)`, with `f ~ GP(0, k)`. Training amounts to a
//! single Cholesky factorization of `K + σ²I`; prediction of mean and variance at a query
//! point costs one triangular solve. Outputs are standardized internally so the zero-mean
//! prior is reasonable regardless of the metric being tuned (throughput, latency, ...).
//!
//! # Incremental vs from-scratch fitting
//!
//! Two paths produce a fitted model, with an exact-equivalence contract between them:
//!
//! * [`GaussianProcess::fit`] — from scratch: builds the full `n×n` gram matrix and
//!   factorizes it, `O(n³)`. Required whenever the kernel hyper-parameters or the noise
//!   variance change (both invalidate the cached factor).
//! * [`GaussianProcess::observe`] — incremental, `O(n²)`: computes one new kernel row,
//!   extends the cached Cholesky factor by one row ([`linalg::Cholesky::extend`]), refits
//!   the output standardizer (`O(n)`) and re-solves the dual weights `α` with two
//!   triangular solves. When the extension fails (the new point is numerically dependent
//!   on the training set) it silently falls back to a full `fit` with jitter escalation.
//!
//! The two paths yield *bit-identical* posteriors: `extend` replays exactly the
//! floating-point operations `decompose` would perform for the appended row, the
//! standardizer is refitted on all targets either way, and `α` is always re-solved from
//! the full target vector. Snapshot/restore across the workspace refits from scratch and
//! relies on this equivalence for replay determinism (see the property tests below).

use crate::kernels::Kernel;
use crate::normalize::Standardizer;
use linalg::{Cholesky, FactorScratch, Matrix};
use telemetry::{CounterId, EventKind, TelemetryHandle};

/// Reusable buffers for the fit path: the Gram matrix, the factor storage, the
/// standardized targets, the dual-weight spare and the observe-path kernel row.
///
/// Every [`GaussianProcess`] owns one arena and threads it through
/// [`GaussianProcess::fit`] and [`GaussianProcess::observe`], so repeated refits at a
/// stable training-set size perform **no allocation** (buffers are reshaped in place and
/// factor storage ping-pongs between the active fit and the arena). The
/// hyper-parameter optimizer creates one arena per restart worker for the same reason —
/// its `O(restarts × iters)` trial loop reuses each worker's buffers across every
/// likelihood evaluation.
///
/// The arena carries **no model state**: it is never serialized, a cloned GP starts with
/// a fresh one, and clearing it cannot change any computed value (buffer contents are
/// fully overwritten before every read).
#[derive(Default)]
pub(crate) struct FitArena {
    /// Gram-matrix buffer, reshaped in place per fit.
    pub(crate) gram: Matrix,
    /// Standardized-target buffer.
    pub(crate) y_std: Vec<f64>,
    /// Spare dual-weight buffer (swapped with the fitted state's `alpha` on refit).
    pub(crate) alpha_spare: Vec<f64>,
    /// Recycled Cholesky factor storage.
    pub(crate) factor: FactorScratch,
    /// Kernel-row buffer for the incremental observe path.
    pub(crate) row: Vec<f64>,
}

/// Errors produced by GP fitting or prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// `fit` was called with no observations.
    EmptyTrainingSet,
    /// The number of targets does not match the number of inputs.
    LengthMismatch {
        /// Number of input rows provided.
        inputs: usize,
        /// Number of target values provided.
        targets: usize,
    },
    /// The kernel matrix could not be factorized even with jitter.
    KernelNotPositiveDefinite,
    /// Prediction was requested before the model was fitted.
    NotFitted,
    /// A query point has a different dimension than the training data.
    DimensionMismatch {
        /// Dimension of the training inputs.
        expected: usize,
        /// Dimension of the query point.
        actual: usize,
    },
    /// A training input contains a NaN or infinite coordinate. Non-finite inputs are
    /// rejected before they can reach the Gram matrix, where a single NaN would poison
    /// the whole factorization.
    NonFiniteInput {
        /// Index of the offending input row.
        index: usize,
    },
    /// A training target is NaN or infinite. Non-finite targets are rejected before
    /// they can reach the standardizer or the dual weights.
    NonFiniteTarget {
        /// Index of the offending target value.
        index: usize,
    },
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::EmptyTrainingSet => write!(f, "cannot fit a GP with zero observations"),
            GpError::LengthMismatch { inputs, targets } => {
                write!(f, "{inputs} inputs but {targets} targets")
            }
            GpError::KernelNotPositiveDefinite => {
                write!(f, "kernel matrix is not positive definite")
            }
            GpError::NotFitted => write!(f, "the GP has not been fitted yet"),
            GpError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "query dimension {actual} does not match training dimension {expected}"
                )
            }
            GpError::NonFiniteInput { index } => {
                write!(f, "training input {index} contains a non-finite coordinate")
            }
            GpError::NonFiniteTarget { index } => {
                write!(f, "training target {index} is not finite")
            }
        }
    }
}

impl std::error::Error for GpError {}

/// Rejects non-finite training data before it can reach the factorization. A single
/// NaN in the Gram matrix silently poisons every subsequent solve, so the boundary
/// check is the only place the damage can be contained with a typed error.
fn validate_finite(x: &[Vec<f64>], y: &[f64]) -> Result<(), GpError> {
    for (index, row) in x.iter().enumerate() {
        if row.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFiniteInput { index });
        }
    }
    for (index, v) in y.iter().enumerate() {
        if !v.is_finite() {
            return Err(GpError::NonFiniteTarget { index });
        }
    }
    Ok(())
}

/// Candidate-partition granularity of the parallel [`GaussianProcess::predict_batch`]
/// path. The batch is carved into `PREDICT_CHUNK`-candidate chunks and chunks are dealt
/// to workers contiguously — a fixed candidate→worker partition, so the split points
/// depend only on the batch size and worker count, never on data. Batches of at most
/// one chunk always run serially (the sweep is microseconds at that size).
pub const PREDICT_CHUNK: usize = 64;

/// Posterior prediction at a single point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posterior {
    /// Posterior mean in the original (un-standardized) output units.
    pub mean: f64,
    /// Posterior standard deviation in the original output units.
    pub std_dev: f64,
}

impl Posterior {
    /// Posterior variance.
    pub fn variance(&self) -> f64 {
        self.std_dev * self.std_dev
    }
}

struct FittedState {
    chol: Cholesky,
    /// `(K + σ²I)^{-1} y` in standardized output space.
    alpha: Vec<f64>,
    x: Vec<Vec<f64>>,
    /// Raw (un-standardized) targets; kept so incremental observes can refresh the
    /// standardizer and so fallback refits have the full training set at hand.
    y_raw: Vec<f64>,
    standardizer: Standardizer,
    dim: usize,
}

/// An exact Gaussian-process regressor.
pub struct GaussianProcess {
    kernel: Box<dyn Kernel>,
    noise_variance: f64,
    fitted: Option<FittedState>,
    /// Reusable fit/observe buffers (runtime-only; carries no model state).
    arena: FitArena,
    /// Intra-op worker grant (runtime-only, never serialized): threads used *inside*
    /// one fit's trailing-panel Cholesky update and one `predict_batch` sweep. Results
    /// are bit-identical at every value — the grant shapes wall-clock time only — so
    /// it carries no model state and snapshots ignore it.
    intraop_workers: usize,
    /// Observability sink (runtime-only, never serialized; the default is the no-op
    /// sink). Instrumentation is read-only with respect to model state.
    telemetry: TelemetryHandle,
}

impl Clone for GaussianProcess {
    fn clone(&self) -> Self {
        // Refitting is cheap relative to cloning the factorization state, and cloning is only
        // used when spawning per-cluster models, which are refitted immediately anyway.
        GaussianProcess {
            kernel: self.kernel.clone(),
            noise_variance: self.noise_variance,
            fitted: None,
            arena: FitArena::default(),
            intraop_workers: self.intraop_workers,
            telemetry: self.telemetry.clone(),
        }
    }
}

impl GaussianProcess {
    /// Creates an unfitted GP with the given kernel and observation-noise variance
    /// (in standardized output units).
    pub fn new(kernel: Box<dyn Kernel>, noise_variance: f64) -> Self {
        assert!(noise_variance > 0.0, "noise variance must be positive");
        GaussianProcess {
            kernel,
            noise_variance,
            fitted: None,
            arena: FitArena::default(),
            intraop_workers: 1,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Sets the intra-op worker grant used by [`GaussianProcess::fit`]'s trailing-panel
    /// Cholesky update and [`GaussianProcess::predict_batch`]'s candidate sweep. A grant
    /// of 0 (e.g. deserialized from an old snapshot upstream) is treated as 1. Runtime
    /// tuning only: every computed value is bit-identical at every grant.
    pub fn set_intraop_workers(&mut self, workers: usize) {
        self.intraop_workers = workers.max(1);
    }

    /// The intra-op worker grant (1 = serial, the default).
    pub fn intraop_workers(&self) -> usize {
        self.intraop_workers
    }

    /// Installs a telemetry sink (runtime-only; excluded from snapshots, so replay is
    /// bit-identical whether or not one is installed).
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// The installed telemetry sink (the no-op sink by default).
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// Observation-noise variance.
    pub fn noise_variance(&self) -> f64 {
        self.noise_variance
    }

    /// Sets the observation-noise variance (clamped to a small positive floor) and
    /// invalidates any previous fit.
    pub fn set_noise_variance(&mut self, v: f64) {
        self.noise_variance = v.max(1e-8);
        self.fitted = None;
    }

    /// Immutable access to the kernel.
    pub fn kernel(&self) -> &dyn Kernel {
        self.kernel.as_ref()
    }

    /// Mutable access to the kernel (invalidates the fit).
    pub fn kernel_mut(&mut self) -> &mut Box<dyn Kernel> {
        self.fitted = None;
        &mut self.kernel
    }

    /// Number of training observations in the current fit (0 when unfitted).
    pub fn n_observations(&self) -> usize {
        self.fitted.as_ref().map_or(0, |s| s.x.len())
    }

    /// Whether `fit` has been called successfully.
    pub fn is_fitted(&self) -> bool {
        self.fitted.is_some()
    }

    /// Discards the cached fit (factorization and training data) without touching the
    /// hyper-parameters. Callers that maintain their own observation store (e.g.
    /// `ContextualGp`) use this after replacing observations in bulk so a later
    /// [`GaussianProcess::observe`] cannot extend a factor built from stale data.
    pub fn invalidate_fit(&mut self) {
        self.fitted = None;
    }

    /// Fits the GP to the given inputs and targets.
    ///
    /// All working storage comes from the GP's internal fit arena: the Gram matrix is
    /// rebuilt into a reused buffer, the factorization recycles the previous fit's
    /// storage, and the dual weights swap with a spare — so repeated refits at a stable
    /// training-set size allocate nothing. On failure the previous fit is kept intact
    /// (the new factor is built in spare storage before the old one is retired).
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), GpError> {
        if x.is_empty() {
            return Err(GpError::EmptyTrainingSet);
        }
        if x.len() != y.len() {
            return Err(GpError::LengthMismatch {
                inputs: x.len(),
                targets: y.len(),
            });
        }
        validate_finite(x, y)?;
        let dim = x[0].len();
        let standardizer = Standardizer::fit(y);
        self.arena.y_std.clear();
        self.arena
            .y_std
            .extend(y.iter().map(|&v| standardizer.transform(v)));

        let n = x.len();
        self.arena.gram.reshape(n, n);
        // Only the lower triangle (+ diagonal) is filled, in the same (i-outer,
        // j-inner) order `Matrix::from_fn` used: the Cholesky factorization never reads
        // above the diagonal and every kernel is exactly symmetric, so the factor — and
        // therefore the whole fit — is bit-identical to building the full Gram matrix,
        // at half the kernel-evaluation cost.
        for i in 0..n {
            for j in 0..=i {
                self.arena.gram.set(i, j, self.kernel.eval(&x[i], &x[j]));
            }
        }
        self.arena
            .gram
            .add_diagonal(self.noise_variance)
            .expect("gram matrix is square by construction");
        let chol = Cholesky::decompose_with_jitter_scratch_workers(
            &self.arena.gram,
            1e-3,
            &mut self.arena.factor,
            self.intraop_workers,
        )
        .map_err(|_| GpError::KernelNotPositiveDefinite)?;
        if chol.jitter() > 0.0 {
            self.telemetry.incr(CounterId::JitterEscalations);
            if self.telemetry.is_enabled() {
                self.telemetry.event(
                    EventKind::JitterEscalation,
                    "gp",
                    &format!("n={} jitter={:e}", n, chol.jitter()),
                );
            }
        }
        let mut alpha = std::mem::take(&mut self.arena.alpha_spare);
        if chol.solve_into(&self.arena.y_std, &mut alpha).is_err() {
            chol.into_scratch(&mut self.arena.factor);
            self.arena.alpha_spare = alpha;
            return Err(GpError::KernelNotPositiveDefinite);
        }

        match self.fitted.as_mut() {
            Some(state) => {
                std::mem::replace(&mut state.chol, chol).into_scratch(&mut self.arena.factor);
                self.arena.alpha_spare = std::mem::replace(&mut state.alpha, alpha);
                // Reuse the retained training-set buffers (inner vectors keep their
                // allocations via clone_from).
                state.x.truncate(x.len());
                let reused = state.x.len();
                for (dst, src) in state.x.iter_mut().zip(x.iter()) {
                    dst.clone_from(src);
                }
                state.x.extend(x[reused..].iter().cloned());
                state.y_raw.clear();
                state.y_raw.extend_from_slice(y);
                state.standardizer = standardizer;
                state.dim = dim;
            }
            None => {
                self.fitted = Some(FittedState {
                    chol,
                    alpha,
                    x: x.to_vec(),
                    y_raw: y.to_vec(),
                    standardizer,
                    dim,
                });
            }
        }
        Ok(())
    }

    /// Adds a single observation incrementally in `O(n²)` (the hot path of online tuning).
    ///
    /// Computes the kernel row of the new point against the cached training inputs,
    /// extends the Cholesky factor by one row/column, refits the output standardizer on
    /// all raw targets and re-solves the dual weights — no gram-matrix rebuild, no
    /// `O(n³)` factorization. The resulting posterior is bit-identical to calling
    /// [`GaussianProcess::fit`] on the full extended training set (see the module docs).
    ///
    /// Falls back to a full `fit` (with jitter escalation) when the factor extension
    /// fails, e.g. because the new point duplicates an existing one. On an unfitted model
    /// this is simply `fit` on the single observation. If the fallback itself fails the
    /// previous fit is kept and the new observation is dropped.
    pub fn observe(&mut self, x_new: &[f64], y_new: f64) -> Result<(), GpError> {
        if x_new.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFiniteInput { index: 0 });
        }
        if !y_new.is_finite() {
            return Err(GpError::NonFiniteTarget { index: 0 });
        }
        let Some(state) = self.fitted.as_mut() else {
            return self.fit(&[x_new.to_vec()], &[y_new]);
        };
        if x_new.len() != state.dim {
            return Err(GpError::DimensionMismatch {
                expected: state.dim,
                actual: x_new.len(),
            });
        }
        // Kernel row of the new point, evaluated in the same argument order the gram
        // matrix construction in `fit` uses (row index first) so the extended factor is
        // bit-identical to a from-scratch factorization. The row lives in the arena so
        // the per-iteration observe path performs no allocation beyond the stored copy
        // of the observation itself.
        let row = &mut self.arena.row;
        row.clear();
        row.extend(state.x.iter().map(|xi| self.kernel.eval(x_new, xi)));
        row.push(self.kernel.eval(x_new, x_new) + self.noise_variance);

        if state.chol.extend(row).is_ok() {
            state.x.push(x_new.to_vec());
            state.y_raw.push(y_new);
            state.standardizer = Standardizer::fit(&state.y_raw);
            let y_std = &mut self.arena.y_std;
            y_std.clear();
            y_std.extend(state.y_raw.iter().map(|&v| state.standardizer.transform(v)));
            match state.chol.solve_into(y_std, &mut state.alpha) {
                Ok(()) => {
                    self.telemetry.incr(CounterId::ObserveFastPath);
                    return Ok(());
                }
                Err(_) => {
                    // A zero pivot after a successful extension cannot normally happen;
                    // recover through the from-scratch path below (which rebuilds the
                    // partially overwritten dual weights).
                    let xs = state.x.clone();
                    let ys = state.y_raw.clone();
                    self.note_observe_fallback(xs.len(), "zero pivot after extension");
                    return self.fit(&xs, &ys);
                }
            }
        }

        // The appended pivot was not positive: refit from scratch, letting
        // `decompose_with_jitter` escalate the diagonal jitter.
        let mut xs = state.x.clone();
        xs.push(x_new.to_vec());
        let mut ys = state.y_raw.clone();
        ys.push(y_new);
        self.note_observe_fallback(xs.len(), "non-positive appended pivot");
        self.fit(&xs, &ys)
    }

    /// Counts (and journals) an incremental-observe fallback to a full refit.
    fn note_observe_fallback(&self, n: usize, reason: &str) {
        self.telemetry.incr(CounterId::ObserveFullRefit);
        if self.telemetry.is_enabled() {
            self.telemetry.event(
                EventKind::ObserveFallback,
                "gp",
                &format!("n={n} reason={reason}"),
            );
        }
    }

    /// The dual weights `α = (K + σ²I)^{-1} y` of the current fit, in standardized
    /// output space (`None` when unfitted). `|α_i|` measures how strongly observation
    /// `i` shapes the posterior mean, which the observation-budget eviction policy uses
    /// as its information score.
    pub fn alpha(&self) -> Option<&[f64]> {
        self.fitted.as_ref().map(|s| s.alpha.as_slice())
    }

    /// Predicts the posterior mean and standard deviation at a query point.
    pub fn predict(&self, x_star: &[f64]) -> Result<Posterior, GpError> {
        let state = self.fitted.as_ref().ok_or(GpError::NotFitted)?;
        if x_star.len() != state.dim {
            return Err(GpError::DimensionMismatch {
                expected: state.dim,
                actual: x_star.len(),
            });
        }
        let n = state.x.len();
        let k_star: Vec<f64> = (0..n)
            .map(|i| self.kernel.eval(&state.x[i], x_star))
            .collect();

        let mean_std = k_star
            .iter()
            .zip(state.alpha.iter())
            .map(|(k, a)| k * a)
            .sum::<f64>();

        // var = k(x*, x*) - k_*^T (K + σ²I)^{-1} k_*  computed via v = L^{-1} k_*.
        let v = state
            .chol
            .solve_lower(&k_star)
            .map_err(|_| GpError::KernelNotPositiveDefinite)?;
        let prior = self.kernel.eval(x_star, x_star);
        let var_std = (prior - v.iter().map(|vi| vi * vi).sum::<f64>()).max(1e-12);

        Ok(Posterior {
            mean: state.standardizer.inverse(mean_std),
            std_dev: var_std.sqrt() * state.standardizer.scale(),
        })
    }

    /// Predicts at many points at once — the suggest-path hot loop.
    ///
    /// Instead of `C` scalar predictions (each paying an `O(n·d)` kernel row, an `O(n²)`
    /// triangular solve and two heap allocations), the batch is computed as one `C × n`
    /// cross-kernel matrix ([`crate::kernels::Kernel::eval_cross`], which lets additive
    /// contextual kernels share the context column across candidates) followed by one
    /// multi-RHS forward solve ([`linalg::Cholesky::solve_lower_multi`], which streams
    /// the factor through cache once per row block instead of once per candidate). No
    /// per-candidate allocation is performed.
    ///
    /// **Bit-identity contract:** the returned posteriors are bit-for-bit equal to
    /// calling [`GaussianProcess::predict`] on each point — the batched code performs
    /// the same floating-point operations in the same order per candidate (the same
    /// contract [`linalg::Cholesky::extend`] honors on the observe path). Snapshot
    /// replay and the safety assessment rely on this.
    ///
    /// When the intra-op grant exceeds 1 and the batch spans more than one
    /// [`PREDICT_CHUNK`], the batch is split across workers by the fixed
    /// candidate→worker partition (contiguous chunk ranges) and recombined **in
    /// candidate order** — each worker runs the full cross-kernel / multi-solve /
    /// posterior pipeline on its own slice, and every per-candidate value depends only
    /// on that candidate's row (the `eval_cross` and `solve_lower_multi` per-row
    /// contracts), so the result is worker-count independent bit for bit.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<Posterior>, GpError> {
        let state = self.fitted.as_ref().ok_or(GpError::NotFitted)?;
        for x in xs {
            if x.len() != state.dim {
                return Err(GpError::DimensionMismatch {
                    expected: state.dim,
                    actual: x.len(),
                });
            }
        }
        if xs.is_empty() {
            return Ok(Vec::new());
        }
        let n_chunks = xs.len().div_ceil(PREDICT_CHUNK);
        let w = self.intraop_workers.max(1).min(n_chunks);
        if w > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..w)
                    .map(|c| {
                        // Worker c owns chunks [c·n_chunks/w, (c+1)·n_chunks/w) — a
                        // contiguous candidate range determined only by (C, w).
                        let lo = (c * n_chunks / w) * PREDICT_CHUNK;
                        let hi = (((c + 1) * n_chunks / w) * PREDICT_CHUNK).min(xs.len());
                        let slice = &xs[lo..hi];
                        scope.spawn(move || self.predict_slice(state, slice))
                    })
                    .collect();
                // Index-ordered combine: join in worker order, append in candidate
                // order; the first failing slice's error surfaces (all slices see the
                // same state, so any failure is common to every worker anyway).
                let mut out = Vec::with_capacity(xs.len());
                for h in handles {
                    out.extend(h.join().expect("predict_batch worker panicked")?);
                }
                Ok(out)
            })
        } else {
            self.predict_slice(state, xs)
        }
    }

    /// The batched posterior pipeline on one contiguous candidate slice: cross-kernel
    /// matrix, multi-RHS forward solve, then the per-candidate mean/variance loop.
    /// Every output depends only on its own candidate's row, so slicing the batch at
    /// any boundary yields the same bits per candidate.
    fn predict_slice(
        &self,
        state: &FittedState,
        xs: &[Vec<f64>],
    ) -> Result<Vec<Posterior>, GpError> {
        let k_cross = self.kernel.eval_cross(&state.x, xs);
        let v = state
            .chol
            .solve_lower_multi(&k_cross)
            .map_err(|_| GpError::KernelNotPositiveDefinite)?;
        let mut out = Vec::with_capacity(xs.len());
        for (q, x_star) in xs.iter().enumerate() {
            let mean_std = k_cross
                .row(q)
                .iter()
                .zip(state.alpha.iter())
                .map(|(k, a)| k * a)
                .sum::<f64>();
            let prior = self.kernel.eval(x_star, x_star);
            let var_std = (prior - v.row(q).iter().map(|vi| vi * vi).sum::<f64>()).max(1e-12);
            out.push(Posterior {
                mean: state.standardizer.inverse(mean_std),
                std_dev: var_std.sqrt() * state.standardizer.scale(),
            });
        }
        Ok(out)
    }

    /// Log marginal likelihood of the given data under the current hyper-parameters.
    ///
    /// Computed in standardized output space; only relative values matter for
    /// hyper-parameter selection.
    pub fn log_marginal_likelihood(&self, x: &[Vec<f64>], y: &[f64]) -> Result<f64, GpError> {
        if x.is_empty() {
            return Err(GpError::EmptyTrainingSet);
        }
        if x.len() != y.len() {
            return Err(GpError::LengthMismatch {
                inputs: x.len(),
                targets: y.len(),
            });
        }
        let standardizer = Standardizer::fit(y);
        let y_std: Vec<f64> = y.iter().map(|&v| standardizer.transform(v)).collect();
        let n = x.len();
        let mut k = Matrix::from_fn(n, n, |i, j| self.kernel.eval(&x[i], &x[j]));
        k.add_diagonal(self.noise_variance)
            .expect("gram matrix is square by construction");
        let chol = Cholesky::decompose_with_jitter(&k, 1e-3)
            .map_err(|_| GpError::KernelNotPositiveDefinite)?;
        let alpha = chol
            .solve(&y_std)
            .map_err(|_| GpError::KernelNotPositiveDefinite)?;
        let data_fit: f64 = y_std.iter().zip(alpha.iter()).map(|(a, b)| a * b).sum();
        let lml = -0.5 * data_fit
            - 0.5 * chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
        Ok(lml)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Matern52Kernel, RbfKernel, ScaledKernel};

    fn sample_problem() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = sin(3x) on [0, 1], 12 evenly spaced points.
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
        (xs, ys)
    }

    fn default_gp() -> GaussianProcess {
        GaussianProcess::new(
            Box::new(ScaledKernel::new(Box::new(Matern52Kernel::new(0.3)), 1.0)),
            1e-4,
        )
    }

    #[test]
    fn fit_then_predict_interpolates_training_points() {
        let (xs, ys) = sample_problem();
        let mut gp = default_gp();
        gp.fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            let p = gp.predict(x).unwrap();
            assert!((p.mean - y).abs() < 0.05, "{} vs {}", p.mean, y);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (xs, ys) = sample_problem();
        let mut gp = default_gp();
        gp.fit(&xs, &ys).unwrap();
        let near = gp.predict(&[0.5]).unwrap();
        let far = gp.predict(&[3.0]).unwrap();
        assert!(far.std_dev > near.std_dev * 2.0);
    }

    #[test]
    fn predict_before_fit_is_an_error() {
        let gp = default_gp();
        assert_eq!(gp.predict(&[0.5]).unwrap_err(), GpError::NotFitted);
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let mut gp = default_gp();
        let err = gp.fit(&[vec![0.0], vec![1.0]], &[1.0]).unwrap_err();
        assert!(matches!(err, GpError::LengthMismatch { .. }));
        assert_eq!(gp.fit(&[], &[]).unwrap_err(), GpError::EmptyTrainingSet);
    }

    #[test]
    fn dimension_mismatch_on_predict() {
        let (xs, ys) = sample_problem();
        let mut gp = default_gp();
        gp.fit(&xs, &ys).unwrap();
        assert!(matches!(
            gp.predict(&[0.1, 0.2]).unwrap_err(),
            GpError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn duplicate_points_are_handled_via_jitter() {
        let xs = vec![vec![0.5], vec![0.5], vec![0.5], vec![0.9]];
        let ys = vec![1.0, 1.01, 0.99, 2.0];
        let mut gp = default_gp();
        gp.fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.5]).unwrap();
        assert!((p.mean - 1.0).abs() < 0.1);
    }

    #[test]
    fn constant_targets_predict_the_constant() {
        let xs = vec![vec![0.1], vec![0.5], vec![0.9]];
        let ys = vec![7.0, 7.0, 7.0];
        let mut gp = default_gp();
        gp.fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.3]).unwrap();
        assert!((p.mean - 7.0).abs() < 1e-6);
    }

    #[test]
    fn log_marginal_likelihood_prefers_sensible_lengthscale() {
        let (xs, ys) = sample_problem();
        let good = GaussianProcess::new(
            Box::new(ScaledKernel::new(Box::new(RbfKernel::new(0.3)), 1.0)),
            1e-4,
        );
        let bad = GaussianProcess::new(
            Box::new(ScaledKernel::new(Box::new(RbfKernel::new(1e-3)), 1.0)),
            1e-4,
        );
        let lml_good = good.log_marginal_likelihood(&xs, &ys).unwrap();
        let lml_bad = bad.log_marginal_likelihood(&xs, &ys).unwrap();
        assert!(lml_good > lml_bad);
    }

    #[test]
    fn posterior_variance_is_nonnegative_everywhere() {
        let (xs, ys) = sample_problem();
        let mut gp = default_gp();
        gp.fit(&xs, &ys).unwrap();
        for i in 0..50 {
            let x = -1.0 + 4.0 * i as f64 / 49.0;
            let p = gp.predict(&[x]).unwrap();
            assert!(p.variance() >= 0.0);
            assert!(p.mean.is_finite());
        }
    }

    #[test]
    fn observe_matches_fit_bitwise() {
        let (xs, ys) = sample_problem();
        let mut incremental = default_gp();
        for (x, y) in xs.iter().zip(ys.iter()) {
            incremental.observe(x, *y).unwrap();
        }
        let mut scratch = default_gp();
        scratch.fit(&xs, &ys).unwrap();
        assert_eq!(incremental.n_observations(), scratch.n_observations());
        for i in 0..40 {
            let q = [-0.5 + 2.0 * i as f64 / 39.0];
            let a = incremental.predict(&q).unwrap();
            let b = scratch.predict(&q).unwrap();
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "mean at {q:?}");
            assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits(), "std at {q:?}");
        }
    }

    #[test]
    fn observe_on_unfitted_model_fits_single_point() {
        let mut gp = default_gp();
        gp.observe(&[0.5], 3.0).unwrap();
        assert!(gp.is_fitted());
        assert_eq!(gp.n_observations(), 1);
        let p = gp.predict(&[0.5]).unwrap();
        assert!((p.mean - 3.0).abs() < 1e-9);
    }

    #[test]
    fn observe_duplicate_point_falls_back_to_jittered_refit() {
        let mut gp = default_gp();
        gp.observe(&[0.5], 1.0).unwrap();
        // An exact duplicate makes the incremental pivot fail; the fallback refit with
        // jitter must still produce a usable model containing both observations.
        gp.observe(&[0.5], 1.01).unwrap();
        assert_eq!(gp.n_observations(), 2);
        let p = gp.predict(&[0.5]).unwrap();
        assert!(p.mean.is_finite() && p.std_dev.is_finite());
        // ... and it must agree with the from-scratch path, which hits the same jitter.
        let mut scratch = default_gp();
        scratch.fit(&[vec![0.5], vec![0.5]], &[1.0, 1.01]).unwrap();
        let a = gp.predict(&[0.3]).unwrap();
        let b = scratch.predict(&[0.3]).unwrap();
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
    }

    #[test]
    fn observe_dimension_mismatch_is_rejected() {
        let mut gp = default_gp();
        gp.observe(&[0.1], 1.0).unwrap();
        assert!(matches!(
            gp.observe(&[0.1, 0.2], 2.0),
            Err(GpError::DimensionMismatch { .. })
        ));
        assert_eq!(gp.n_observations(), 1);
    }

    #[test]
    fn hyperparameter_change_invalidates_fit_and_forces_refit() {
        let mut gp = default_gp();
        for i in 0..5 {
            gp.observe(&[i as f64 / 4.0], i as f64).unwrap();
        }
        gp.set_noise_variance(1e-2);
        assert!(!gp.is_fitted());
        // observe() on the invalidated model only knows about the new point; the caller
        // (ContextualGp) is responsible for refitting on its full observation store.
        gp.observe(&[0.9], 4.0).unwrap();
        assert_eq!(gp.n_observations(), 1);
    }

    #[test]
    fn alpha_exposes_dual_weights() {
        let (xs, ys) = sample_problem();
        let mut gp = default_gp();
        assert!(gp.alpha().is_none());
        gp.fit(&xs, &ys).unwrap();
        assert_eq!(gp.alpha().unwrap().len(), xs.len());
    }

    #[test]
    fn batch_prediction_matches_pointwise() {
        let (xs, ys) = sample_problem();
        let mut gp = default_gp();
        gp.fit(&xs, &ys).unwrap();
        let queries = vec![vec![0.2], vec![0.7]];
        let batch = gp.predict_batch(&queries).unwrap();
        for (q, b) in queries.iter().zip(batch.iter()) {
            let p = gp.predict(q).unwrap();
            assert_eq!(p.mean.to_bits(), b.mean.to_bits());
            assert_eq!(p.std_dev.to_bits(), b.std_dev.to_bits());
        }
    }

    #[test]
    fn predict_batch_is_bit_identical_across_intraop_worker_counts() {
        // Split points around the chunk granularity: C = 1, PREDICT_CHUNK−1,
        // PREDICT_CHUNK (largest batch that stays serial), PREDICT_CHUNK+1 (smallest
        // batch that splits), and a multi-chunk batch with a ragged tail. The
        // candidate→worker partition must not change a single bit, and the LCB argmin
        // (the suggest-path selection) must pick the same candidate at every grant.
        let n = 40;
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / (n - 1) as f64, (i as f64 * 0.37).sin()])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin() * 4.0 + x[1]).collect();
        let mut gp = GaussianProcess::new(
            Box::new(ScaledKernel::new(Box::new(Matern52Kernel::new(0.3)), 1.0)),
            1e-4,
        );
        gp.fit(&xs, &ys).unwrap();
        let lcb_argmin = |ps: &[Posterior]| {
            let mut best = 0;
            for (i, p) in ps.iter().enumerate() {
                if crate::acquisition::lower_confidence_bound(p, 2.0)
                    < crate::acquisition::lower_confidence_bound(&ps[best], 2.0)
                {
                    best = i;
                }
            }
            best
        };
        for &c in &[
            1usize,
            PREDICT_CHUNK - 1,
            PREDICT_CHUNK,
            PREDICT_CHUNK + 1,
            3 * PREDICT_CHUNK + 7,
        ] {
            let queries: Vec<Vec<f64>> = (0..c)
                .map(|q| vec![q as f64 / c as f64 * 1.4 - 0.2, (q as f64 * 0.61).cos()])
                .collect();
            gp.set_intraop_workers(1);
            let serial = gp.predict_batch(&queries).unwrap();
            for &w in &[2usize, 4, 8] {
                gp.set_intraop_workers(w);
                let par = gp.predict_batch(&queries).unwrap();
                assert_eq!(par.len(), serial.len());
                for (q, (a, b)) in par.iter().zip(serial.iter()).enumerate() {
                    assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "C={c} w={w} q={q}");
                    assert_eq!(
                        a.std_dev.to_bits(),
                        b.std_dev.to_bits(),
                        "C={c} w={w} q={q}"
                    );
                }
                assert_eq!(lcb_argmin(&par), lcb_argmin(&serial), "C={c} w={w}");
            }
        }
    }

    #[test]
    fn intraop_fit_is_bit_identical_and_survives_clone() {
        // The fit-path factorization must produce the same posterior at every intra-op
        // grant (the parallel trailing update engages at this size), and a cloned GP
        // keeps the grant.
        let n = 150;
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i as f64 * 0.13).sin(), (i as f64 * 0.29).cos()])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 3.0 - x[1]).collect();
        let mut serial_gp = default_gp();
        serial_gp.fit(&xs, &ys).unwrap();
        let probe = vec![0.3, -0.4];
        let serial = serial_gp.predict(&probe).unwrap();
        for w in [2usize, 4] {
            let mut gp = default_gp();
            gp.set_intraop_workers(w);
            assert_eq!(gp.intraop_workers(), w);
            assert_eq!(gp.clone().intraop_workers(), w, "clone keeps the grant");
            gp.fit(&xs, &ys).unwrap();
            let p = gp.predict(&probe).unwrap();
            assert_eq!(p.mean.to_bits(), serial.mean.to_bits(), "w={w}");
            assert_eq!(p.std_dev.to_bits(), serial.std_dev.to_bits(), "w={w}");
        }
    }

    #[test]
    fn batch_prediction_edge_cases() {
        let (xs, ys) = sample_problem();
        let mut gp = default_gp();
        assert_eq!(
            gp.predict_batch(&[vec![0.5]]).unwrap_err(),
            GpError::NotFitted
        );
        gp.fit(&xs, &ys).unwrap();
        assert!(gp.predict_batch(&[]).unwrap().is_empty());
        // A single malformed query fails the whole batch with the scalar path's error.
        assert!(matches!(
            gp.predict_batch(&[vec![0.5], vec![0.1, 0.2]]).unwrap_err(),
            GpError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn non_finite_training_data_is_rejected_with_typed_errors() {
        let mut gp = default_gp();
        assert_eq!(
            gp.fit(&[vec![0.1], vec![f64::NAN]], &[1.0, 2.0])
                .unwrap_err(),
            GpError::NonFiniteInput { index: 1 }
        );
        assert_eq!(
            gp.fit(&[vec![0.1], vec![0.2]], &[1.0, f64::INFINITY])
                .unwrap_err(),
            GpError::NonFiniteTarget { index: 1 }
        );
        assert!(
            gp.predict(&[0.5]).is_err(),
            "rejected fits must not leave a fitted model behind"
        );
        // The incremental path rejects too, and keeps the existing fit intact.
        let (xs, ys) = sample_problem();
        gp.fit(&xs, &ys).unwrap();
        let before = gp.predict(&[0.5]).unwrap();
        assert_eq!(
            gp.observe(&[f64::NEG_INFINITY], 1.0).unwrap_err(),
            GpError::NonFiniteInput { index: 0 }
        );
        assert_eq!(
            gp.observe(&[0.7], f64::NAN).unwrap_err(),
            GpError::NonFiniteTarget { index: 0 }
        );
        let after = gp.predict(&[0.5]).unwrap();
        assert_eq!(before.mean, after.mean);
        assert_eq!(before.std_dev, after.std_dev);
    }

    mod properties {
        use super::*;
        use crate::acquisition::{lower_confidence_bound, upper_confidence_bound};
        use crate::kernels::AdditiveContextKernel;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Satellite property of the fault-tolerance PR: a fuzzed interleaving of
            /// finite and non-finite observations must never yield a non-finite
            /// posterior — every poisoned feed is rejected at the boundary and every
            /// accepted feed keeps the factor healthy.
            #[test]
            fn prop_mixed_finite_and_poisoned_feeds_keep_the_posterior_finite(
                feeds in proptest::collection::vec(
                    (-1.0f64..1.0, -5.0f64..5.0, 0u8..4), 1..24),
            ) {
                let mut gp = default_gp();
                for (x, y, poison) in &feeds {
                    let (xq, yq) = match poison {
                        1 => (f64::NAN, *y),
                        2 => (*x, f64::INFINITY),
                        3 => (f64::NEG_INFINITY, f64::NAN),
                        _ => (*x, *y),
                    };
                    let result = gp.observe(&[xq], yq);
                    if *poison == 0 {
                        prop_assert!(result.is_ok());
                    } else {
                        prop_assert!(matches!(
                            result.unwrap_err(),
                            GpError::NonFiniteInput { .. } | GpError::NonFiniteTarget { .. }
                        ));
                    }
                    if gp.is_fitted() {
                        let p = gp.predict(&[0.3]).unwrap();
                        prop_assert!(p.mean.is_finite(), "mean {}", p.mean);
                        prop_assert!(p.std_dev.is_finite(), "std {}", p.std_dev);
                    }
                }
            }

            #[test]
            fn prop_predict_batch_bit_identical_to_pointwise(
                kernel_idx in 0usize..4,
                data in proptest::collection::vec(
                    (proptest::collection::vec(-1.0f64..1.0, 3), -5.0f64..5.0), 3..16),
                queries in proptest::collection::vec(
                    proptest::collection::vec(-1.5f64..1.5, 3), 1..12),
                shared_ctx in -1.0f64..1.0,
                beta in 0.5f64..3.0,
            ) {
                // The batched posterior — and everything derived from it (LCB safety
                // bound, UCB acquisition) — must equal the per-point path bit-for-bit
                // across kernels, training-set sizes, batch sizes and contexts.
                let kernel: Box<dyn Kernel> = match kernel_idx {
                    0 => Box::new(Matern52Kernel::new(0.3)),
                    1 => Box::new(RbfKernel::new(0.5)),
                    2 => Box::new(ScaledKernel::new(Box::new(Matern52Kernel::new(0.4)), 2.0)),
                    _ => Box::new(AdditiveContextKernel::new(2)),
                };
                let xs: Vec<Vec<f64>> = data.iter().map(|(x, _)| x.clone()).collect();
                let ys: Vec<f64> = data.iter().map(|(_, y)| *y).collect();
                let mut gp = GaussianProcess::new(kernel, 1e-4);
                gp.fit(&xs, &ys).unwrap();
                // Mixed per-query contexts and a shared-context batch (the latter takes
                // the additive kernel's context-column-sharing fast path).
                let mut shared = queries.clone();
                for q in shared.iter_mut() {
                    q[2] = shared_ctx;
                }
                for batch_queries in [&queries, &shared] {
                    let batch = gp.predict_batch(batch_queries).unwrap();
                    prop_assert_eq!(batch.len(), batch_queries.len());
                    for (q, b) in batch_queries.iter().zip(batch.iter()) {
                        let p = gp.predict(q).unwrap();
                        prop_assert_eq!(p.mean.to_bits(), b.mean.to_bits());
                        prop_assert_eq!(p.std_dev.to_bits(), b.std_dev.to_bits());
                        prop_assert_eq!(
                            lower_confidence_bound(&p, beta).to_bits(),
                            lower_confidence_bound(b, beta).to_bits()
                        );
                        prop_assert_eq!(
                            upper_confidence_bound(&p, beta).to_bits(),
                            upper_confidence_bound(b, beta).to_bits()
                        );
                    }
                }
            }

            #[test]
            fn prop_predictions_finite_for_random_data(
                raw in proptest::collection::vec((-1.0f64..1.0, -10.0f64..10.0), 3..20),
                q in -2.0f64..2.0,
            ) {
                let xs: Vec<Vec<f64>> = raw.iter().map(|(x, _)| vec![*x]).collect();
                let ys: Vec<f64> = raw.iter().map(|(_, y)| *y).collect();
                let mut gp = default_gp();
                gp.fit(&xs, &ys).unwrap();
                let p = gp.predict(&[q]).unwrap();
                prop_assert!(p.mean.is_finite());
                prop_assert!(p.std_dev.is_finite());
                prop_assert!(p.std_dev >= 0.0);
            }

            #[test]
            fn prop_incremental_observe_equals_from_scratch_fit(
                raw in proptest::collection::vec((-1.0f64..1.0, -10.0f64..10.0), 2..24),
                probes in proptest::collection::vec(-1.5f64..1.5, 8),
            ) {
                // Random observe sequences: the incrementally-built posterior must agree
                // with the from-scratch fit within 1e-9 everywhere (it is bit-identical
                // in practice; the tolerance is the contract the ISSUE pins).
                let mut incremental = default_gp();
                for (x, y) in &raw {
                    incremental.observe(&[*x], *y).unwrap();
                }
                let xs: Vec<Vec<f64>> = raw.iter().map(|(x, _)| vec![*x]).collect();
                let ys: Vec<f64> = raw.iter().map(|(_, y)| *y).collect();
                let mut scratch = default_gp();
                scratch.fit(&xs, &ys).unwrap();
                for q in &probes {
                    let a = incremental.predict(&[*q]).unwrap();
                    let b = scratch.predict(&[*q]).unwrap();
                    prop_assert!((a.mean - b.mean).abs() < 1e-9, "mean {} vs {}", a.mean, b.mean);
                    prop_assert!((a.std_dev - b.std_dev).abs() < 1e-9, "std {} vs {}", a.std_dev, b.std_dev);
                }
            }

            #[test]
            fn prop_posterior_mean_within_data_range_at_observed_points(
                raw in proptest::collection::vec((-1.0f64..1.0, 0.0f64..100.0), 4..16),
            ) {
                let xs: Vec<Vec<f64>> = raw.iter().map(|(x, _)| vec![*x]).collect();
                let ys: Vec<f64> = raw.iter().map(|(_, y)| *y).collect();
                let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let span = (hi - lo).max(1.0);
                let mut gp = default_gp();
                gp.fit(&xs, &ys).unwrap();
                for x in &xs {
                    let p = gp.predict(x).unwrap();
                    prop_assert!(p.mean >= lo - span && p.mean <= hi + span);
                }
            }
        }
    }
}
