//! # gp — Gaussian-process regression for configuration tuning
//!
//! This crate implements the surrogate-model machinery used by OnlineTune and the
//! Bayesian-optimization baselines of the SIGMOD 2022 paper:
//!
//! * [`kernels`] — Matérn-5/2, RBF and linear kernels, a scaled wrapper and the **additive
//!   contextual kernel** `k_Θ(θ, θ') + k_C(c, c')` from §5.2 of the paper.
//! * [`regression`] — exact GP regression via Cholesky factorization (posterior mean,
//!   variance, log marginal likelihood) on top of the [`linalg`] crate.
//! * [`hyperopt`] — log-marginal-likelihood hyper-parameter fitting with a multi-start
//!   Nelder–Mead simplex optimizer (no gradients needed).
//! * [`acquisition`] — Expected Improvement (used by the OtterTune-style baseline),
//!   GP-UCB and the lower confidence bound used for black-box safety assessment,
//!   including the `β_t` schedule of Srinivas et al. referenced by the paper.
//! * [`normalize`] — input min–max scaling and output standardization helpers.
//! * [`contextual`] — a convenience wrapper that manages the `(context, configuration)`
//!   joint input space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acquisition;
pub mod contextual;
pub mod hyperopt;
pub mod kernels;
pub mod normalize;
pub mod regression;

pub use acquisition::{
    expected_improvement, lower_confidence_bound, ucb_beta, upper_confidence_bound,
};
pub use contextual::ContextualGp;
pub use kernels::{
    AdditiveContextKernel, Kernel, LinearKernel, Matern52Kernel, RbfKernel, ScaledKernel,
};
pub use regression::{GaussianProcess, GpError, Posterior};
