//! # gp — Gaussian-process regression for configuration tuning
//!
//! This crate implements the surrogate-model machinery used by OnlineTune and the
//! Bayesian-optimization baselines of the SIGMOD 2022 paper:
//!
//! * [`kernels`] — Matérn-5/2, RBF and linear kernels, a scaled wrapper and the **additive
//!   contextual kernel** `k_Θ(θ, θ') + k_C(c, c')` from §5.2 of the paper.
//! * [`regression`] — exact GP regression via Cholesky factorization (posterior mean,
//!   variance, log marginal likelihood) on top of the [`linalg`] crate.
//! * [`hyperopt`] — log-marginal-likelihood hyper-parameter fitting with a multi-start
//!   Nelder–Mead simplex optimizer (no gradients needed).
//! * [`acquisition`] — Expected Improvement (used by the OtterTune-style baseline),
//!   GP-UCB and the lower confidence bound used for black-box safety assessment,
//!   including the `β_t` schedule of Srinivas et al. referenced by the paper.
//! * [`normalize`] — input min–max scaling and output standardization helpers.
//! * [`contextual`] — a convenience wrapper that manages the `(context, configuration)`
//!   joint input space, with an optional observation budget.
//!
//! ## The incremental-vs-refit contract
//!
//! Online tuning observes one point per iteration, so the per-iteration model update is
//! the hot path of the whole system. [`GaussianProcess`] therefore offers two fitting
//! paths with a strict equivalence contract (see [`regression`] for details):
//!
//! * [`GaussianProcess::observe`] / [`ContextualGp::observe`] — `O(n²)`: extend the
//!   cached Cholesky factor by one row, refresh the output standardizer, re-solve the
//!   dual weights. Use this whenever only the training set grew.
//! * [`GaussianProcess::fit`] / [`ContextualGp::refit`] — `O(n³)`: rebuild everything.
//!   Required after kernel hyper-parameter or noise changes (both invalidate the cached
//!   factor automatically), bulk observation replacement, and snapshot restore.
//!
//! Both paths produce **bit-identical** posteriors, so callers may mix them freely —
//! snapshot/restore (which refits) replays incrementally-built sessions exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acquisition;
pub mod contextual;
pub mod hyperopt;
pub mod kernels;
pub mod normalize;
pub mod regression;

pub use acquisition::{
    expected_improvement, lower_confidence_bound, ucb_beta, upper_confidence_bound,
};
pub use contextual::{ContextualGp, ObservationBudget};
pub use kernels::{
    AdditiveContextKernel, Kernel, LinearKernel, Matern52Kernel, RbfKernel, ScaledKernel,
};
pub use regression::{GaussianProcess, GpError, Posterior, PREDICT_CHUNK};
