//! Contextual Gaussian process: a GP over the joint `(configuration, context)` space.
//!
//! This is the surrogate model of §5.2. The configuration is expected to be normalized into
//! the unit hypercube (see [`crate::normalize::MinMaxScaler`]); the context is the feature
//! vector produced by the `featurize` crate. Internally the model simply concatenates
//! `[θ, c]` and uses the additive contextual kernel.

use crate::hyperopt::{optimize_hyperparameters, HyperOptOptions, HyperOptReport};
use crate::kernels::AdditiveContextKernel;
use crate::regression::{GaussianProcess, GpError, Posterior};
use rand::Rng;

/// One `(context, configuration, performance)` observation, in the units used by the tuner
/// (normalized configuration, raw context feature, raw performance).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ContextObservation {
    /// Context feature vector `c_t`.
    pub context: Vec<f64>,
    /// Normalized configuration vector `θ_t ∈ [0, 1]^m`.
    pub config: Vec<f64>,
    /// Observed performance `y_t` (higher is better; latency objectives are negated by the
    /// caller).
    pub performance: f64,
}

/// A Gaussian process over the joint context–configuration space.
pub struct ContextualGp {
    gp: GaussianProcess,
    config_dim: usize,
    context_dim: usize,
    observations: Vec<ContextObservation>,
}

impl ContextualGp {
    /// Creates an empty contextual GP for the given dimensions.
    pub fn new(config_dim: usize, context_dim: usize) -> Self {
        let kernel = AdditiveContextKernel::new(config_dim);
        ContextualGp {
            gp: GaussianProcess::new(Box::new(kernel), 1e-2),
            config_dim,
            context_dim,
            observations: Vec::new(),
        }
    }

    /// Number of configuration dimensions.
    pub fn config_dim(&self) -> usize {
        self.config_dim
    }

    /// Number of context dimensions.
    pub fn context_dim(&self) -> usize {
        self.context_dim
    }

    /// The stored observations.
    pub fn observations(&self) -> &[ContextObservation] {
        &self.observations
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the model has no observations.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    fn joint(&self, config: &[f64], context: &[f64]) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.config_dim + self.context_dim);
        v.extend_from_slice(config);
        v.extend_from_slice(context);
        v
    }

    /// Adds an observation without refitting (call [`ContextualGp::refit`] afterwards).
    pub fn add_observation(&mut self, obs: ContextObservation) {
        debug_assert_eq!(obs.config.len(), self.config_dim);
        debug_assert_eq!(obs.context.len(), self.context_dim);
        self.observations.push(obs);
    }

    /// Replaces all observations (used when re-clustering reassigns observations to models).
    pub fn set_observations(&mut self, obs: Vec<ContextObservation>) {
        self.observations = obs;
    }

    /// Refits the underlying GP on the stored observations.
    pub fn refit(&mut self) -> Result<(), GpError> {
        if self.observations.is_empty() {
            return Err(GpError::EmptyTrainingSet);
        }
        let x: Vec<Vec<f64>> = self
            .observations
            .iter()
            .map(|o| self.joint(&o.config, &o.context))
            .collect();
        let y: Vec<f64> = self.observations.iter().map(|o| o.performance).collect();
        self.gp.fit(&x, &y)
    }

    /// Refits and additionally optimizes the kernel hyper-parameters.
    pub fn refit_with_hyperopt<R: Rng>(
        &mut self,
        options: &HyperOptOptions,
        rng: &mut R,
    ) -> Result<HyperOptReport, GpError> {
        if self.observations.is_empty() {
            return Err(GpError::EmptyTrainingSet);
        }
        let x: Vec<Vec<f64>> = self
            .observations
            .iter()
            .map(|o| self.joint(&o.config, &o.context))
            .collect();
        let y: Vec<f64> = self.observations.iter().map(|o| o.performance).collect();
        let report = optimize_hyperparameters(&mut self.gp, &x, &y, options, rng);
        // optimize_hyperparameters refits internally; make sure the fit succeeded.
        if !self.gp.is_fitted() {
            self.gp.fit(&x, &y)?;
        }
        Ok(report)
    }

    /// Predicts the performance of `config` under `context`.
    pub fn predict(&self, config: &[f64], context: &[f64]) -> Result<Posterior, GpError> {
        self.gp.predict(&self.joint(config, context))
    }

    /// Exports the kernel hyper-parameters (log space) and the observation-noise variance.
    ///
    /// Together with [`ContextualGp::observations`] this is the complete model state:
    /// fitting is deterministic, so restoring the hyper-parameters and refitting on the
    /// same observations reproduces the posterior bit-for-bit.
    pub fn hyperparams(&self) -> (Vec<f64>, f64) {
        (self.gp.kernel().params(), self.gp.noise_variance())
    }

    /// Restores hyper-parameters exported by [`ContextualGp::hyperparams`].
    ///
    /// Invalidates the current fit; call [`ContextualGp::refit`] afterwards.
    pub fn set_hyperparams(&mut self, kernel_params: &[f64], noise_variance: f64) {
        self.gp.kernel_mut().set_params(kernel_params);
        self.gp.set_noise_variance(noise_variance);
    }

    /// Whether the model has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.gp.is_fitted()
    }

    /// The best observed performance (and the corresponding configuration) under *any*
    /// context, or `None` when empty. OnlineTune centers its subspace on this configuration.
    pub fn best_observation(&self) -> Option<&ContextObservation> {
        self.observations.iter().max_by(|a, b| {
            a.performance
                .partial_cmp(&b.performance)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy objective with a context-dependent optimum: f(θ, c) = -(θ - c)² so the best
    /// configuration equals the context value.
    fn toy(theta: f64, c: f64) -> f64 {
        -(theta - c).powi(2)
    }

    fn build_model() -> ContextualGp {
        let mut model = ContextualGp::new(1, 1);
        for i in 0..10 {
            let theta = i as f64 / 9.0;
            for &c in &[0.2, 0.4] {
                model.add_observation(ContextObservation {
                    context: vec![c],
                    config: vec![theta],
                    performance: toy(theta, c),
                });
            }
        }
        model.refit().unwrap();
        model
    }

    #[test]
    fn predicts_context_dependent_optimum() {
        let model = build_model();
        // Under context 0.2 the best configuration is near 0.2, under 0.4 near 0.4.
        let near_02 = model.predict(&[0.2], &[0.2]).unwrap().mean;
        let off_02 = model.predict(&[0.8], &[0.2]).unwrap().mean;
        assert!(near_02 > off_02);
        let near_04 = model.predict(&[0.4], &[0.4]).unwrap().mean;
        let off_04 = model.predict(&[0.9], &[0.4]).unwrap().mean;
        assert!(near_04 > off_04);
    }

    #[test]
    fn transfers_knowledge_to_nearby_context() {
        // Figure 3 of the paper: observations only under context 0.2; the posterior under a
        // nearby context (0.25) should still be informative (lower uncertainty than under a
        // distant context far outside the observed range).
        let mut model = ContextualGp::new(1, 1);
        for i in 0..8 {
            let theta = i as f64 / 7.0;
            model.add_observation(ContextObservation {
                context: vec![0.2],
                config: vec![theta],
                performance: toy(theta, 0.2),
            });
        }
        model.refit().unwrap();
        let near = model.predict(&[0.5], &[0.25]).unwrap();
        let far = model.predict(&[0.5], &[5.0]).unwrap();
        assert!(near.std_dev < far.std_dev);
    }

    #[test]
    fn best_observation_returns_maximum() {
        let model = build_model();
        let best = model.best_observation().unwrap();
        let max = model
            .observations()
            .iter()
            .map(|o| o.performance)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(best.performance, max);
    }

    #[test]
    fn empty_model_refit_is_an_error() {
        let mut model = ContextualGp::new(2, 3);
        assert!(model.refit().is_err());
        assert!(model.is_empty());
        assert!(model.best_observation().is_none());
    }

    #[test]
    fn hyperopt_path_produces_a_fitted_model() {
        let mut model = build_model();
        let mut rng = rand::rngs::mock::StepRng::new(42, 13);
        let report = model
            .refit_with_hyperopt(
                &HyperOptOptions {
                    restarts: 1,
                    max_iters: 20,
                    ..Default::default()
                },
                &mut rng,
            )
            .unwrap();
        assert!(model.is_fitted());
        assert!(report.best_lml.is_finite());
    }
}
