//! Contextual Gaussian process: a GP over the joint `(configuration, context)` space.
//!
//! This is the surrogate model of §5.2. The configuration is expected to be normalized into
//! the unit hypercube (see [`crate::normalize::MinMaxScaler`]); the context is the feature
//! vector produced by the `featurize` crate. Internally the model simply concatenates
//! `[θ, c]` and uses the additive contextual kernel.
//!
//! # Hot path
//!
//! [`ContextualGp::observe`] is the per-iteration update used by the online tuner: it
//! appends the observation and extends the underlying GP incrementally in `O(n²)`
//! ([`GaussianProcess::observe`]). The from-scratch [`ContextualGp::refit`] remains for
//! the cases where the cached factorization is genuinely stale: hyper-parameter changes
//! ([`ContextualGp::refit_with_hyperopt`], [`ContextualGp::set_hyperparams`]), bulk
//! observation replacement ([`ContextualGp::set_observations`]) and snapshot restore.
//! An optional [`ObservationBudget`] bounds memory and per-iteration cost by evicting
//! low-information observations in batches once a window size is exceeded.

use crate::hyperopt::{optimize_hyperparameters, HyperOptOptions, HyperOptReport};
use crate::kernels::AdditiveContextKernel;
use crate::regression::{GaussianProcess, GpError, Posterior};
use rand::Rng;

/// One `(context, configuration, performance)` observation, in the units used by the tuner
/// (normalized configuration, raw context feature, raw performance).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ContextObservation {
    /// Context feature vector `c_t`.
    pub context: Vec<f64>,
    /// Normalized configuration vector `θ_t ∈ [0, 1]^m`.
    pub config: Vec<f64>,
    /// Observed performance `y_t` (higher is better; latency objectives are negated by the
    /// caller).
    pub performance: f64,
}

/// Bounds how many observations a [`ContextualGp`] retains.
///
/// When the store exceeds `window`, it is shrunk to `evict_to` observations in one batch
/// (followed by a single full refit), so eviction cost is amortized: with
/// `evict_to < window` the `O(n³)` refit happens once every `window - evict_to`
/// observations, keeping the *amortized* per-observation cost `O(n²)`.
///
/// The retained set is the most recent `evict_to / 2` observations unconditionally, plus
/// the older observations with the largest dual weight `|α_i|` (the highest-information
/// points: those that shape the posterior mean the most). Selection is deterministic
/// (ties break toward recency), which snapshot replay relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ObservationBudget {
    /// Maximum number of observations retained; exceeding it triggers an eviction.
    pub window: usize,
    /// Number of observations kept after an eviction (`<= window`).
    pub evict_to: usize,
}

impl ObservationBudget {
    /// A budget that evicts down to 3/4 of `window`, amortizing refits over
    /// `window / 4` observations.
    pub fn new(window: usize) -> Self {
        let window = window.max(1);
        ObservationBudget {
            window,
            evict_to: (window * 3 / 4).max(1),
        }
    }
}

/// A Gaussian process over the joint context–configuration space.
pub struct ContextualGp {
    gp: GaussianProcess,
    config_dim: usize,
    context_dim: usize,
    observations: Vec<ContextObservation>,
    budget: Option<ObservationBudget>,
    /// Reusable joint-input buffer for refits (runtime-only scratch, never serialized):
    /// a periodic refit or hyperopt pass rebuilds the `[θ, c]` rows into these vectors
    /// instead of collecting a fresh `Vec<Vec<f64>>` each time.
    refit_x: Vec<Vec<f64>>,
    /// Reusable target buffer for refits.
    refit_y: Vec<f64>,
}

impl ContextualGp {
    /// Creates an empty contextual GP for the given dimensions (no observation budget).
    pub fn new(config_dim: usize, context_dim: usize) -> Self {
        let kernel = AdditiveContextKernel::new(config_dim);
        ContextualGp {
            gp: GaussianProcess::new(Box::new(kernel), 1e-2),
            config_dim,
            context_dim,
            observations: Vec::new(),
            budget: None,
            refit_x: Vec::new(),
            refit_y: Vec::new(),
        }
    }

    /// Rebuilds the joint-input and target refit buffers from the stored observations,
    /// reusing both the outer and inner vector allocations.
    fn fill_refit_buffers(&mut self) {
        let n = self.observations.len();
        let joint_dim = self.config_dim + self.context_dim;
        self.refit_x.truncate(n);
        while self.refit_x.len() < n {
            self.refit_x.push(Vec::with_capacity(joint_dim));
        }
        for (dst, o) in self.refit_x.iter_mut().zip(self.observations.iter()) {
            dst.clear();
            dst.extend_from_slice(&o.config);
            dst.extend_from_slice(&o.context);
        }
        self.refit_y.clear();
        self.refit_y
            .extend(self.observations.iter().map(|o| o.performance));
    }

    /// Sets (or clears) the observation budget. The budget is enforced on the next
    /// [`ContextualGp::observe`]; it does not evict retroactively.
    pub fn set_budget(&mut self, budget: Option<ObservationBudget>) {
        self.budget = budget;
    }

    /// Installs a telemetry sink on this model and its underlying GP (runtime-only,
    /// never serialized).
    pub fn set_telemetry(&mut self, telemetry: telemetry::TelemetryHandle) {
        self.gp.set_telemetry(telemetry);
    }

    /// Sets the intra-op worker grant of the underlying GP (threads inside one refit's
    /// Cholesky and one `predict_batch` sweep). Runtime-only, never serialized; results
    /// are bit-identical at every grant, so snapshots taken under different grants
    /// replay identically.
    pub fn set_intraop_workers(&mut self, workers: usize) {
        self.gp.set_intraop_workers(workers);
    }

    /// The intra-op worker grant of the underlying GP (1 = serial).
    pub fn intraop_workers(&self) -> usize {
        self.gp.intraop_workers()
    }

    /// The installed telemetry sink (the no-op sink by default).
    pub fn telemetry(&self) -> &telemetry::TelemetryHandle {
        self.gp.telemetry()
    }

    /// The current observation budget, if any.
    pub fn budget(&self) -> Option<ObservationBudget> {
        self.budget
    }

    /// Number of configuration dimensions.
    pub fn config_dim(&self) -> usize {
        self.config_dim
    }

    /// Number of context dimensions.
    pub fn context_dim(&self) -> usize {
        self.context_dim
    }

    /// The stored observations.
    pub fn observations(&self) -> &[ContextObservation] {
        &self.observations
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the model has no observations.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    fn joint(&self, config: &[f64], context: &[f64]) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.config_dim + self.context_dim);
        v.extend_from_slice(config);
        v.extend_from_slice(context);
        v
    }

    /// Adds an observation without refitting (call [`ContextualGp::refit`] afterwards).
    ///
    /// Prefer [`ContextualGp::observe`] in per-iteration loops — it keeps the model
    /// fitted at `O(n²)` instead of deferring an `O(n³)` refit.
    pub fn add_observation(&mut self, obs: ContextObservation) {
        debug_assert_eq!(obs.config.len(), self.config_dim);
        debug_assert_eq!(obs.context.len(), self.context_dim);
        self.observations.push(obs);
    }

    /// Adds an observation and updates the model incrementally in `O(n²)` (the hot path).
    ///
    /// When the underlying GP's training set is exactly the stored observations, the new
    /// point is folded in via [`GaussianProcess::observe`] (Cholesky extension, no gram
    /// rebuild). Otherwise — first observation, a prior refit failure, or an invalidated
    /// fit after [`ContextualGp::set_hyperparams`] — it falls back to a full
    /// [`ContextualGp::refit`]. Afterwards the observation budget, if any, is enforced.
    ///
    /// The resulting posterior is identical (bit-for-bit) to `add_observation` followed
    /// by `refit`; only the cost differs.
    ///
    /// A wrong-dimension observation is rejected before it touches the store — unlike the
    /// `debug_assert` in [`ContextualGp::add_observation`], this holds in release builds,
    /// where a single malformed observation would otherwise poison every later refit.
    pub fn observe(&mut self, obs: ContextObservation) -> Result<(), GpError> {
        if obs.config.len() != self.config_dim {
            return Err(GpError::DimensionMismatch {
                expected: self.config_dim,
                actual: obs.config.len(),
            });
        }
        if obs.context.len() != self.context_dim {
            return Err(GpError::DimensionMismatch {
                expected: self.context_dim,
                actual: obs.context.len(),
            });
        }
        // Non-finite data is rejected *before* the store push: once a NaN observation
        // lives in the store, every later refit would fail forever.
        if obs
            .config
            .iter()
            .chain(obs.context.iter())
            .any(|v| !v.is_finite())
        {
            return Err(GpError::NonFiniteInput { index: 0 });
        }
        if !obs.performance.is_finite() {
            return Err(GpError::NonFiniteTarget { index: 0 });
        }
        let joint = self.joint(&obs.config, &obs.context);
        let performance = obs.performance;
        self.observations.push(obs);
        if self.gp.is_fitted() && self.gp.n_observations() + 1 == self.observations.len() {
            self.gp.observe(&joint, performance)?;
        } else {
            self.refit()?;
        }
        self.enforce_budget()
    }

    /// Applies the observation budget: when the store exceeds `window`, keep the most
    /// recent `evict_to / 2` observations plus the highest-`|α|` older ones, then refit.
    fn enforce_budget(&mut self) -> Result<(), GpError> {
        let Some(budget) = self.budget else {
            return Ok(());
        };
        if self.observations.len() <= budget.window {
            return Ok(());
        }
        let n_keep = budget.evict_to.min(budget.window).max(1);
        let total = self.observations.len();
        let recent_keep = (n_keep / 2).max(1).min(n_keep);
        let recent_start = total - recent_keep;
        let budget_slots = n_keep - recent_keep;

        // Rank the older observations by their influence on the posterior mean. The dual
        // weights are available iff the GP is fitted on exactly the stored observations;
        // otherwise fall back to pure recency.
        let scores: Vec<f64> = match self.gp.alpha() {
            Some(alpha) if alpha.len() == total => alpha.iter().map(|a| a.abs()).collect(),
            _ => (0..total).map(|i| i as f64).collect(),
        };
        let mut older: Vec<usize> = (0..recent_start).collect();
        older.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a))
        });
        let mut keep_idx: Vec<usize> = older.into_iter().take(budget_slots).collect();
        keep_idx.extend(recent_start..total);
        // Chronological order keeps "most recent" semantics stable across evictions.
        keep_idx.sort_unstable();

        let kept: Vec<ContextObservation> = keep_idx
            .into_iter()
            .map(|i| self.observations[i].clone())
            .collect();
        let evicted = total - kept.len();
        let t = self.gp.telemetry();
        t.add(telemetry::CounterId::BudgetEvictions, evicted as u64);
        if t.is_enabled() {
            t.event(
                telemetry::EventKind::BudgetEviction,
                "contextual-gp",
                &format!(
                    "evicted={evicted} kept={} window={}",
                    kept.len(),
                    budget.window
                ),
            );
        }
        self.observations = kept;
        self.refit()
    }

    /// Replaces all observations (used when re-clustering reassigns observations to
    /// models). Invalidates the underlying fit: the cached factorization belongs to the
    /// old observation set, and a same-length replacement would otherwise be
    /// indistinguishable from it on the next [`ContextualGp::observe`]. Call
    /// [`ContextualGp::refit`] to fit on the new set.
    pub fn set_observations(&mut self, obs: Vec<ContextObservation>) {
        self.observations = obs;
        self.gp.invalidate_fit();
    }

    /// Refits the underlying GP on the stored observations. The joint-input rows are
    /// rebuilt into a reused buffer and the GP's own fit arena recycles the Gram matrix
    /// and factor storage, so periodic refits at a stable window size do not allocate.
    pub fn refit(&mut self) -> Result<(), GpError> {
        if self.observations.is_empty() {
            return Err(GpError::EmptyTrainingSet);
        }
        self.fill_refit_buffers();
        self.gp.fit(&self.refit_x, &self.refit_y)
    }

    /// Refits and additionally optimizes the kernel hyper-parameters.
    pub fn refit_with_hyperopt<R: Rng>(
        &mut self,
        options: &HyperOptOptions,
        rng: &mut R,
    ) -> Result<HyperOptReport, GpError> {
        if self.observations.is_empty() {
            return Err(GpError::EmptyTrainingSet);
        }
        self.fill_refit_buffers();
        let report =
            optimize_hyperparameters(&mut self.gp, &self.refit_x, &self.refit_y, options, rng);
        // Invariant: `optimize_hyperparameters` refits the GP as its final step, so
        // fitting again here would redo the O(n³) work it just did. If that internal fit
        // failed, retrying the identical deterministic fit cannot succeed either —
        // surface the failure instead of double-fitting.
        if self.gp.is_fitted() {
            self.enforce_budget()?;
            Ok(report)
        } else {
            Err(GpError::KernelNotPositiveDefinite)
        }
    }

    /// Predicts the performance of `config` under `context`.
    pub fn predict(&self, config: &[f64], context: &[f64]) -> Result<Posterior, GpError> {
        self.gp.predict(&self.joint(config, context))
    }

    /// Predicts the performance of many candidate configurations under one shared
    /// context with a single batched GP call ([`GaussianProcess::predict_batch`]).
    ///
    /// Because every candidate carries the same context, the additive contextual kernel
    /// computes the context column once for the whole sweep. The posteriors are
    /// bit-identical to calling [`ContextualGp::predict`] per candidate.
    pub fn predict_batch(
        &self,
        configs: &[Vec<f64>],
        context: &[f64],
    ) -> Result<Vec<Posterior>, GpError> {
        let mut scratch = Vec::new();
        self.predict_batch_with_scratch(configs, context, &mut scratch)
    }

    /// Like [`ContextualGp::predict_batch`], but reuses `scratch` for the joint
    /// `[θ, c]` query vectors: a per-iteration suggest sweep that keeps its scratch
    /// alive performs no per-candidate allocation once the buffers have warmed up.
    pub fn predict_batch_with_scratch(
        &self,
        configs: &[Vec<f64>],
        context: &[f64],
        scratch: &mut Vec<Vec<f64>>,
    ) -> Result<Vec<Posterior>, GpError> {
        scratch.truncate(configs.len());
        for (i, config) in configs.iter().enumerate() {
            if i < scratch.len() {
                let joint = &mut scratch[i];
                joint.clear();
                joint.extend_from_slice(config);
                joint.extend_from_slice(context);
            } else {
                let mut joint = Vec::with_capacity(self.config_dim + self.context_dim);
                joint.extend_from_slice(config);
                joint.extend_from_slice(context);
                scratch.push(joint);
            }
        }
        self.gp.predict_batch(scratch)
    }

    /// Exports the kernel hyper-parameters (log space) and the observation-noise variance.
    ///
    /// Together with [`ContextualGp::observations`] this is the complete model state:
    /// fitting is deterministic, so restoring the hyper-parameters and refitting on the
    /// same observations reproduces the posterior bit-for-bit.
    pub fn hyperparams(&self) -> (Vec<f64>, f64) {
        (self.gp.kernel().params(), self.gp.noise_variance())
    }

    /// Restores hyper-parameters exported by [`ContextualGp::hyperparams`].
    ///
    /// Invalidates the current fit; call [`ContextualGp::refit`] afterwards.
    pub fn set_hyperparams(&mut self, kernel_params: &[f64], noise_variance: f64) {
        self.gp.kernel_mut().set_params(kernel_params);
        self.gp.set_noise_variance(noise_variance);
    }

    /// Whether the model has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.gp.is_fitted()
    }

    /// The best observed performance (and the corresponding configuration) under *any*
    /// context, or `None` when empty. OnlineTune centers its subspace on this configuration.
    pub fn best_observation(&self) -> Option<&ContextObservation> {
        self.observations.iter().max_by(|a, b| {
            a.performance
                .partial_cmp(&b.performance)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy objective with a context-dependent optimum: f(θ, c) = -(θ - c)² so the best
    /// configuration equals the context value.
    fn toy(theta: f64, c: f64) -> f64 {
        -(theta - c).powi(2)
    }

    fn build_model() -> ContextualGp {
        let mut model = ContextualGp::new(1, 1);
        for i in 0..10 {
            let theta = i as f64 / 9.0;
            for &c in &[0.2, 0.4] {
                model.add_observation(ContextObservation {
                    context: vec![c],
                    config: vec![theta],
                    performance: toy(theta, c),
                });
            }
        }
        model.refit().unwrap();
        model
    }

    #[test]
    fn predicts_context_dependent_optimum() {
        let model = build_model();
        // Under context 0.2 the best configuration is near 0.2, under 0.4 near 0.4.
        let near_02 = model.predict(&[0.2], &[0.2]).unwrap().mean;
        let off_02 = model.predict(&[0.8], &[0.2]).unwrap().mean;
        assert!(near_02 > off_02);
        let near_04 = model.predict(&[0.4], &[0.4]).unwrap().mean;
        let off_04 = model.predict(&[0.9], &[0.4]).unwrap().mean;
        assert!(near_04 > off_04);
    }

    #[test]
    fn transfers_knowledge_to_nearby_context() {
        // Figure 3 of the paper: observations only under context 0.2; the posterior under a
        // nearby context (0.25) should still be informative (lower uncertainty than under a
        // distant context far outside the observed range).
        let mut model = ContextualGp::new(1, 1);
        for i in 0..8 {
            let theta = i as f64 / 7.0;
            model.add_observation(ContextObservation {
                context: vec![0.2],
                config: vec![theta],
                performance: toy(theta, 0.2),
            });
        }
        model.refit().unwrap();
        let near = model.predict(&[0.5], &[0.25]).unwrap();
        let far = model.predict(&[0.5], &[5.0]).unwrap();
        assert!(near.std_dev < far.std_dev);
    }

    #[test]
    fn best_observation_returns_maximum() {
        let model = build_model();
        let best = model.best_observation().unwrap();
        let max = model
            .observations()
            .iter()
            .map(|o| o.performance)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(best.performance, max);
    }

    #[test]
    fn empty_model_refit_is_an_error() {
        let mut model = ContextualGp::new(2, 3);
        assert!(model.refit().is_err());
        assert!(model.is_empty());
        assert!(model.best_observation().is_none());
    }

    #[test]
    fn observe_matches_add_then_refit_bitwise() {
        let mut incremental = ContextualGp::new(1, 1);
        let mut scratch = ContextualGp::new(1, 1);
        for i in 0..12 {
            let theta = i as f64 / 11.0;
            let o = ContextObservation {
                context: vec![0.3],
                config: vec![theta],
                performance: toy(theta, 0.3),
            };
            incremental.observe(o.clone()).unwrap();
            scratch.add_observation(o);
        }
        scratch.refit().unwrap();
        for i in 0..20 {
            let theta = i as f64 / 19.0;
            let a = incremental.predict(&[theta], &[0.3]).unwrap();
            let b = scratch.predict(&[theta], &[0.3]).unwrap();
            assert_eq!(a.mean.to_bits(), b.mean.to_bits());
            assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits());
        }
    }

    #[test]
    fn observe_refits_fully_after_hyperparam_change() {
        let mut model = ContextualGp::new(1, 1);
        for i in 0..6 {
            let theta = i as f64 / 5.0;
            model
                .observe(ContextObservation {
                    context: vec![0.2],
                    config: vec![theta],
                    performance: toy(theta, 0.2),
                })
                .unwrap();
        }
        let (params, _) = model.hyperparams();
        model.set_hyperparams(&params, 5e-2); // invalidates the fit
        assert!(!model.is_fitted());
        model
            .observe(ContextObservation {
                context: vec![0.2],
                config: vec![0.5],
                performance: toy(0.5, 0.2),
            })
            .unwrap();
        // The fallback refit must cover the whole store, not just the new point.
        assert!(model.is_fitted());
        assert_eq!(model.len(), 7);
        let p = model.predict(&[0.2], &[0.2]).unwrap();
        assert!(p.mean.is_finite());
    }

    #[test]
    fn observe_rejects_wrong_dimensions_without_mutating_the_store() {
        let mut model = ContextualGp::new(2, 1);
        assert!(matches!(
            model.observe(ContextObservation {
                context: vec![0.1],
                config: vec![0.5], // should be 2-dimensional
                performance: 1.0,
            }),
            Err(GpError::DimensionMismatch { .. })
        ));
        assert!(model.is_empty());
        assert!(!model.is_fitted());
    }

    #[test]
    fn set_observations_invalidates_fit_so_observe_cannot_extend_stale_data() {
        let obs_at = |theta: f64, c: f64| ContextObservation {
            context: vec![c],
            config: vec![theta],
            performance: toy(theta, c),
        };
        let mut model = ContextualGp::new(1, 1);
        for i in 0..8 {
            model.observe(obs_at(i as f64 / 7.0, 0.2)).unwrap();
        }
        // Same-length bulk replacement: the observation count alone cannot distinguish
        // the new store from the old one, so set_observations must drop the cached fit.
        let replacement: Vec<ContextObservation> =
            (0..8).map(|i| obs_at(i as f64 / 7.0, 0.8)).collect();
        model.set_observations(replacement.clone());
        assert!(!model.is_fitted());
        model.observe(obs_at(0.5, 0.8)).unwrap();

        let mut scratch = ContextualGp::new(1, 1);
        scratch.set_observations(replacement);
        scratch.add_observation(obs_at(0.5, 0.8));
        scratch.refit().unwrap();
        let a = model.predict(&[0.3], &[0.8]).unwrap();
        let b = scratch.predict(&[0.3], &[0.8]).unwrap();
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits());
    }

    #[test]
    fn budget_evicts_in_batches_and_keeps_recent_points() {
        let mut model = ContextualGp::new(1, 1);
        model.set_budget(Some(ObservationBudget::new(20)));
        for i in 0..50 {
            let theta = (i % 10) as f64 / 10.0;
            model
                .observe(ContextObservation {
                    context: vec![0.5],
                    config: vec![theta],
                    performance: i as f64,
                })
                .unwrap();
        }
        assert!(model.len() <= 20, "len = {}", model.len());
        // The newest observation always survives eviction.
        assert!(model.observations().iter().any(|o| o.performance == 49.0));
        assert!(model.is_fitted());
    }

    #[test]
    fn budget_retains_high_information_older_points() {
        // One old observation sits far from the rest in performance: its |alpha| is large,
        // so the budget must keep it even though it is the oldest point.
        let mut model = ContextualGp::new(1, 1);
        model.set_budget(Some(ObservationBudget {
            window: 10,
            evict_to: 6,
        }));
        model
            .observe(ContextObservation {
                context: vec![0.5],
                config: vec![0.0],
                performance: 100.0,
            })
            .unwrap();
        for i in 0..10 {
            model
                .observe(ContextObservation {
                    context: vec![0.5],
                    config: vec![0.1 + 0.08 * i as f64],
                    performance: 1.0 + 0.01 * i as f64,
                })
                .unwrap();
        }
        assert!(model.len() <= 10);
        assert!(
            model.observations().iter().any(|o| o.performance == 100.0),
            "the outlier (highest-information point) must survive eviction"
        );
    }

    #[test]
    fn predict_batch_is_bit_identical_to_pointwise_and_reuses_scratch() {
        let model = build_model();
        let candidates: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 / 8.0]).collect();
        let context = [0.3];
        let mut scratch = Vec::new();
        let batch = model
            .predict_batch_with_scratch(&candidates, &context, &mut scratch)
            .unwrap();
        assert_eq!(batch.len(), candidates.len());
        for (c, b) in candidates.iter().zip(batch.iter()) {
            let p = model.predict(c, &context).unwrap();
            assert_eq!(p.mean.to_bits(), b.mean.to_bits());
            assert_eq!(p.std_dev.to_bits(), b.std_dev.to_bits());
        }
        // The scratch survives across sweeps of different sizes — stale joint vectors
        // from a larger previous batch must not leak into a smaller one.
        let fewer = &candidates[..3];
        let batch2 = model
            .predict_batch_with_scratch(fewer, &[0.45], &mut scratch)
            .unwrap();
        assert_eq!(batch2.len(), 3);
        assert_eq!(scratch.len(), 3);
        for (c, b) in fewer.iter().zip(batch2.iter()) {
            let p = model.predict(c, &[0.45]).unwrap();
            assert_eq!(p.mean.to_bits(), b.mean.to_bits());
            assert_eq!(p.std_dev.to_bits(), b.std_dev.to_bits());
        }
        // And the convenience wrapper agrees.
        let batch3 = model.predict_batch(fewer, &[0.45]).unwrap();
        for (a, b) in batch2.iter().zip(batch3.iter()) {
            assert_eq!(a.mean.to_bits(), b.mean.to_bits());
            assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits());
        }
    }

    #[test]
    fn predict_batch_on_unfitted_model_is_an_error() {
        let model = ContextualGp::new(1, 1);
        assert!(matches!(
            model.predict_batch(&[vec![0.5]], &[0.0]),
            Err(GpError::NotFitted)
        ));
    }

    mod budget_properties {
        use super::*;
        use proptest::prelude::*;

        /// One observation of a drifting stream: the context wanders with `i`, so
        /// successive evictions happen under a shifting data distribution — the scenario
        /// regime the budget must stay stable in.
        fn drifting_obs(i: usize, drift: f64) -> ContextObservation {
            let t = i as f64;
            ContextObservation {
                context: vec![(t * drift * 0.05).sin() * 0.5 + 0.5],
                config: vec![(t * 0.37).fract()],
                performance: (t * 0.61).sin() * 10.0 + t,
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(10))]

            /// The most recent `max(1, evict_to / 2)` observations are present at all
            /// times, no matter where the eviction batches fall: the newest half of the
            /// retained set is kept unconditionally, and appends between evictions only
            /// add to the tail.
            #[test]
            fn prop_newest_half_always_kept(
                window in 4usize..16,
                n in 20usize..70,
                drift in 0.1f64..2.0,
            ) {
                let budget = ObservationBudget::new(window);
                let recent_keep = (budget.evict_to / 2).max(1);
                let mut model = ContextualGp::new(1, 1);
                model.set_budget(Some(budget));
                for i in 0..n {
                    model.observe(drifting_obs(i, drift)).unwrap();
                    assert!(model.len() <= window, "budget bound violated: {}", model.len());
                    // Every one of the `recent_keep` newest fed observations is retained,
                    // in chronological order at the tail of the store.
                    let tail_len = recent_keep.min(i + 1);
                    let tail = &model.observations()[model.len() - tail_len..];
                    for (k, o) in tail.iter().enumerate() {
                        let expected = drifting_obs(i + 1 - tail_len + k, drift);
                        assert_eq!(
                            o.performance.to_bits(),
                            expected.performance.to_bits(),
                            "newest-half invariant broken at observe {i}, tail slot {k}"
                        );
                    }
                }
            }

            /// Eviction decisions (including |α| ties) are deterministic: two models fed
            /// the identical stream retain bitwise-identical observation sets and produce
            /// bitwise-identical posteriors. Snapshot replay relies on this.
            #[test]
            fn prop_eviction_is_deterministic(
                window in 4usize..12,
                n in 30usize..60,
            ) {
                let mut a = ContextualGp::new(1, 1);
                let mut b = ContextualGp::new(1, 1);
                a.set_budget(Some(ObservationBudget::new(window)));
                b.set_budget(Some(ObservationBudget::new(window)));
                for i in 0..n {
                    // Duplicated performances and configs produce exactly equal |α|
                    // values, forcing the tie-break path.
                    let o = ContextObservation {
                        context: vec![0.5],
                        config: vec![(i % 4) as f64 / 4.0],
                        performance: (i % 3) as f64,
                    };
                    a.observe(o.clone()).unwrap();
                    b.observe(o).unwrap();
                }
                assert_eq!(a.len(), b.len());
                for (x, y) in a.observations().iter().zip(b.observations().iter()) {
                    assert_eq!(x.performance.to_bits(), y.performance.to_bits());
                    assert_eq!(x.config[0].to_bits(), y.config[0].to_bits());
                }
                let pa = a.predict(&[0.4], &[0.5]).unwrap();
                let pb = b.predict(&[0.4], &[0.5]).unwrap();
                assert_eq!(pa.mean.to_bits(), pb.mean.to_bits());
                assert_eq!(pa.std_dev.to_bits(), pb.std_dev.to_bits());
            }

            /// After many drift-driven evictions the model posterior stays finite and its
            /// uncertainty stays positive — repeated refits on evicted subsets must not
            /// accumulate numerical damage.
            #[test]
            fn prop_posterior_stays_finite_under_repeated_eviction(
                window in 4usize..14,
                drift in 0.1f64..3.0,
            ) {
                let mut model = ContextualGp::new(1, 1);
                model.set_budget(Some(ObservationBudget::new(window)));
                for i in 0..120 {
                    model.observe(drifting_obs(i, drift)).unwrap();
                }
                assert!(model.is_fitted());
                for probe in [0.0, 0.25, 0.5, 0.75, 1.0] {
                    let p = model.predict(&[probe], &[probe]).unwrap();
                    assert!(p.mean.is_finite(), "mean diverged at {probe}: {}", p.mean);
                    assert!(
                        p.std_dev.is_finite() && p.std_dev >= 0.0,
                        "std diverged at {probe}: {}",
                        p.std_dev
                    );
                }
            }
        }
    }

    #[test]
    fn hyperopt_path_produces_a_fitted_model() {
        let mut model = build_model();
        let mut rng = rand::rngs::mock::StepRng::new(42, 13);
        let report = model
            .refit_with_hyperopt(
                &HyperOptOptions {
                    restarts: 1,
                    max_iters: 20,
                    ..Default::default()
                },
                &mut rng,
            )
            .unwrap();
        assert!(model.is_fitted());
        assert!(report.best_lml.is_finite());
    }
}
