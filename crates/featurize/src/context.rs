//! Assembly of the context feature vector from workload and data signals.

use mlkit::QueryEncoder;
use simdb::OptimizerStats;

/// Configuration of the context featurizer.
#[derive(Debug, Clone)]
pub struct ContextFeaturizerConfig {
    /// Dimensionality of the query-composition embedding.
    pub embedding_dim: usize,
    /// Seed of the (fixed) query encoder so features are reproducible.
    pub encoder_seed: u64,
    /// Arrival rate (queries/s) that maps to 1.0 after normalization; higher rates saturate.
    pub arrival_rate_scale: f64,
    /// Include the workload features (arrival rate + composition embedding)?
    /// Disabled by the `OnlineTune-w/o-workload` ablation (Figure 14).
    pub include_workload: bool,
    /// Include the underlying-data (optimizer statistics) features?
    /// Disabled by the `OnlineTune-w/o-data` ablation (Figure 14).
    pub include_data: bool,
}

impl Default for ContextFeaturizerConfig {
    fn default() -> Self {
        ContextFeaturizerConfig {
            embedding_dim: 8,
            encoder_seed: 0x0417e5,
            arrival_rate_scale: 10_000.0,
            include_workload: true,
            include_data: true,
        }
    }
}

/// Produces context vectors `c_t` from the interval's queries and optimizer statistics.
#[derive(Debug, Clone)]
pub struct ContextFeaturizer {
    config: ContextFeaturizerConfig,
    encoder: QueryEncoder,
}

impl ContextFeaturizer {
    /// Creates a featurizer.
    pub fn new(config: ContextFeaturizerConfig) -> Self {
        let encoder = QueryEncoder::new(config.embedding_dim.max(1), config.encoder_seed);
        ContextFeaturizer { config, encoder }
    }

    /// Creates a featurizer with default settings.
    pub fn with_defaults() -> Self {
        Self::new(ContextFeaturizerConfig::default())
    }

    /// Dimensionality of the produced context vectors.
    pub fn dim(&self) -> usize {
        let workload = if self.config.include_workload {
            1 + self.config.embedding_dim
        } else {
            0
        };
        let data = if self.config.include_data { 3 } else { 0 };
        // A context must never be empty (the contextual kernel needs at least one context
        // dimension); fall back to a single constant dimension if both parts are ablated.
        (workload + data).max(1)
    }

    /// Featurizes one tuning interval.
    ///
    /// * `queries` — SQL text observed during (the beginning of) the interval.
    /// * `arrival_rate_qps` — measured arrival rate; `None` for closed-loop benchmarks.
    /// * `stats` — optimizer statistics for the interval's queries.
    pub fn featurize(
        &self,
        queries: &[String],
        arrival_rate_qps: Option<f64>,
        stats: &OptimizerStats,
    ) -> Vec<f64> {
        let mut context = Vec::with_capacity(self.dim());
        if self.config.include_workload {
            let rate = arrival_rate_qps.unwrap_or(self.config.arrival_rate_scale);
            context.push((rate / self.config.arrival_rate_scale).clamp(0.0, 2.0));
            context.extend(self.encoder.encode_workload(queries));
        }
        if self.config.include_data {
            context.extend(stats.to_feature());
        }
        if context.is_empty() {
            context.push(0.0);
        }
        context
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdb::WorkloadSpec;
    use workloads::tpcc::TpccWorkload;
    use workloads::twitter::TwitterWorkload;
    use workloads::WorkloadGenerator;

    fn stats_for(spec: &WorkloadSpec) -> OptimizerStats {
        OptimizerStats::estimate(spec)
    }

    #[test]
    fn dimension_matches_configuration() {
        let full = ContextFeaturizer::with_defaults();
        assert_eq!(full.dim(), 1 + 8 + 3);
        let no_data = ContextFeaturizer::new(ContextFeaturizerConfig {
            include_data: false,
            ..Default::default()
        });
        assert_eq!(no_data.dim(), 9);
        let no_workload = ContextFeaturizer::new(ContextFeaturizerConfig {
            include_workload: false,
            ..Default::default()
        });
        assert_eq!(no_workload.dim(), 3);
        let nothing = ContextFeaturizer::new(ContextFeaturizerConfig {
            include_workload: false,
            include_data: false,
            ..Default::default()
        });
        assert_eq!(nothing.dim(), 1);
    }

    #[test]
    fn featurize_produces_vectors_of_declared_dimension() {
        let f = ContextFeaturizer::with_defaults();
        let tpcc = TpccWorkload::new_dynamic(1);
        let spec = tpcc.spec_at(0);
        let c = f.featurize(&tpcc.sample_queries(0, 30), None, &stats_for(&spec));
        assert_eq!(c.len(), f.dim());
        assert!(c.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn different_workloads_map_to_distant_contexts() {
        let f = ContextFeaturizer::with_defaults();
        let tpcc = TpccWorkload::new_dynamic(1);
        let twitter = TwitterWorkload::new_dynamic(1);
        let c_tpcc = f.featurize(
            &tpcc.sample_queries(0, 40),
            None,
            &stats_for(&tpcc.spec_at(0)),
        );
        let c_twitter = f.featurize(
            &twitter.sample_queries(0, 40),
            None,
            &stats_for(&twitter.spec_at(0)),
        );
        let same_workload_later = f.featurize(
            &tpcc.sample_queries(1, 40),
            None,
            &stats_for(&tpcc.spec_at(1)),
        );
        let cross = linalg::vecops::euclidean_distance(&c_tpcc, &c_twitter);
        let within = linalg::vecops::euclidean_distance(&c_tpcc, &same_workload_later);
        assert!(
            cross > within,
            "cross-workload distance {cross} should exceed within-workload distance {within}"
        );
    }

    #[test]
    fn arrival_rate_moves_the_context() {
        let f = ContextFeaturizer::with_defaults();
        let tpcc = TpccWorkload::new_static(1);
        let queries = tpcc.sample_queries(0, 20);
        let stats = stats_for(&tpcc.spec_at(0));
        let slow = f.featurize(&queries, Some(500.0), &stats);
        let fast = f.featurize(&queries, Some(9_000.0), &stats);
        assert!(fast[0] > slow[0]);
    }

    #[test]
    fn data_growth_moves_the_context_when_data_features_are_enabled() {
        let f = ContextFeaturizer::with_defaults();
        let tpcc = TpccWorkload::new_static(1);
        let queries = tpcc.sample_queries(0, 20);
        let mut small = tpcc.spec_at(0);
        small.data_size_gib = 18.0;
        let mut large = tpcc.spec_at(0);
        large.data_size_gib = 48.0;
        let c_small = f.featurize(&queries, None, &stats_for(&small));
        let c_large = f.featurize(&queries, None, &stats_for(&large));
        assert!(linalg::vecops::euclidean_distance(&c_small, &c_large) > 1e-6);

        let no_data = ContextFeaturizer::new(ContextFeaturizerConfig {
            include_data: false,
            ..Default::default()
        });
        let d_small = no_data.featurize(&queries, None, &stats_for(&small));
        let d_large = no_data.featurize(&queries, None, &stats_for(&large));
        assert_eq!(
            d_small, d_large,
            "without data features growth must be invisible"
        );
    }

    #[test]
    fn empty_query_sample_is_handled() {
        let f = ContextFeaturizer::with_defaults();
        let spec = WorkloadSpec::synthetic_oltp();
        let c = f.featurize(&[], None, &stats_for(&spec));
        assert_eq!(c.len(), f.dim());
    }
}
