//! Prediction of the default-configuration performance for a given context.
//!
//! The safety threshold `τ` is "the database performance under the default configuration"
//! (§3). Under a dynamic workload that value fluctuates, so the paper assumes the default
//! performance for any given workload can be acquired — e.g. by training a regression model
//! from context to default performance on a historical knowledge base, or by occasionally
//! observing the default.
//!
//! [`DefaultPerformancePredictor`] implements that regression model as a distance-weighted
//! nearest-neighbour estimator over observed `(context, default performance)` pairs. It is
//! intentionally simple: it must be monotone-consistent with its observations, cheap to
//! update online, and conservative (falls back to the most pessimistic observation when far
//! from everything it has seen).

/// Distance-weighted k-NN regressor from context vectors to default performance.
#[derive(Debug, Clone)]
pub struct DefaultPerformancePredictor {
    observations: Vec<(Vec<f64>, f64)>,
    k: usize,
}

impl DefaultPerformancePredictor {
    /// Creates an empty predictor using the `k` nearest observations (k = 5 by default via
    /// [`Default`]).
    pub fn new(k: usize) -> Self {
        DefaultPerformancePredictor {
            observations: Vec::new(),
            k: k.max(1),
        }
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the predictor has no observations yet.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Records the measured default performance under a context.
    pub fn observe(&mut self, context: Vec<f64>, default_performance: f64) {
        self.observations.push((context, default_performance));
    }

    /// Predicts the default performance for a context. Returns `None` when no observation
    /// has been recorded yet.
    pub fn predict(&self, context: &[f64]) -> Option<f64> {
        if self.observations.is_empty() {
            return None;
        }
        let k = self.k.max(1);
        let mut dists: Vec<(f64, f64)> = self
            .observations
            .iter()
            .map(|(c, y)| (linalg::vecops::euclidean_distance(c, context), *y))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        dists.truncate(k);

        // Exact (or near-exact) match short-circuits to that observation.
        if dists[0].0 < 1e-9 {
            return Some(dists[0].1);
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (d, y) in &dists {
            let w = 1.0 / (d * d + 1e-9);
            num += w * y;
            den += w;
        }
        Some(num / den)
    }

    /// Conservative prediction: the minimum of the k-NN estimate and the most pessimistic
    /// nearby observation. Useful when the threshold must never be over-estimated (an
    /// over-estimated threshold would let genuinely unsafe configurations pass).
    pub fn predict_conservative(&self, context: &[f64]) -> Option<f64> {
        let base = self.predict(context)?;
        let nearest_min = self
            .observations
            .iter()
            .map(|(c, y)| (linalg::vecops::euclidean_distance(c, context), *y))
            .filter(|(d, _)| *d < 0.5)
            .map(|(_, y)| y)
            .fold(f64::INFINITY, f64::min);
        if nearest_min.is_finite() {
            Some(base.min(nearest_min))
        } else {
            Some(base)
        }
    }
}

impl DefaultPerformancePredictor {
    /// Default k used by `Default::default()`.
    const DEFAULT_K: usize = 5;
}

impl std::default::Default for DefaultPerformancePredictor {
    fn default() -> Self {
        Self::new(Self::DEFAULT_K)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_predictor_returns_none() {
        let p = DefaultPerformancePredictor::new(3);
        assert!(p.predict(&[0.0, 0.0]).is_none());
        assert!(p.is_empty());
    }

    #[test]
    fn exact_match_returns_the_observation() {
        let mut p = DefaultPerformancePredictor::new(3);
        p.observe(vec![0.0, 0.0], 100.0);
        p.observe(vec![1.0, 1.0], 200.0);
        assert_eq!(p.predict(&[0.0, 0.0]), Some(100.0));
        assert_eq!(p.predict(&[1.0, 1.0]), Some(200.0));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn interpolation_lies_between_neighbours() {
        let mut p = DefaultPerformancePredictor::new(5);
        p.observe(vec![0.0], 100.0);
        p.observe(vec![1.0], 200.0);
        let mid = p.predict(&[0.5]).unwrap();
        assert!(mid > 100.0 && mid < 200.0, "mid = {mid}");
        // Closer to the left neighbour → closer to its value.
        let near_left = p.predict(&[0.1]).unwrap();
        assert!(near_left < mid);
    }

    #[test]
    fn conservative_prediction_never_exceeds_nearby_minimum() {
        let mut p = DefaultPerformancePredictor::new(5);
        p.observe(vec![0.0], 100.0);
        p.observe(vec![0.1], 60.0);
        p.observe(vec![0.2], 120.0);
        let conservative = p.predict_conservative(&[0.05]).unwrap();
        assert!(conservative <= 60.0 + 1e-9);
        let plain = p.predict(&[0.05]).unwrap();
        assert!(plain >= conservative);
    }

    #[test]
    fn far_away_context_still_gets_a_prediction() {
        let mut p = DefaultPerformancePredictor::new(2);
        p.observe(vec![0.0, 0.0], 50.0);
        let far = p.predict(&[100.0, 100.0]).unwrap();
        assert!((far - 50.0).abs() < 1e-9);
        assert_eq!(p.predict_conservative(&[100.0, 100.0]), Some(50.0));
    }
}
