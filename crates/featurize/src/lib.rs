//! # featurize — context featurization for online tuning
//!
//! OnlineTune's context feature (§5.1) captures the uncontrollable environmental factors
//! that change the configuration–performance relationship:
//!
//! * the **workload**: query arrival rate (one dimension) plus the query-composition
//!   embedding (the mean of per-query dense encodings), and
//! * the **underlying data**: three optimizer-derived statistics (estimated rows examined,
//!   predicate filter fraction, index usage).
//!
//! The [`ContextFeaturizer`] assembles these into a single context vector `c_t`. The crate
//! also provides [`DefaultPerformancePredictor`], a small regression model that learns the
//! *default-configuration performance* as a function of the context — the paper's
//! suggestion for obtaining the safety threshold when the default performance fluctuates
//! with the workload (§3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod default_perf;

pub use context::{ContextFeaturizer, ContextFeaturizerConfig};
pub use default_perf::DefaultPerformancePredictor;
