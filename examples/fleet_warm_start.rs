//! Fleet usage example: cross-tenant warm start and fleet snapshots.
//!
//! A "teacher" tenant tunes a YCSB workload for a while, feeding the shared knowledge
//! base. A new tenant on the same hardware class and workload family is then admitted
//! twice — once cold, once warm-started from the knowledge base — and their early regret
//! is compared. Finally the whole fleet is snapshotted to JSON and restored.
//!
//! Run with `cargo run --release --example fleet_warm_start`.

use fleet::knowledge::PoolKey;
use fleet::service::{small_tuner_options, FleetOptions, FleetService};
use fleet::tenant::{TenantSession, TenantSpec, WorkloadFamily};
use simdb::HardwareSpec;

fn main() {
    // ── Phase 1: a teacher tenant fills the knowledge base ────────────────────────────
    let mut svc = FleetService::new(FleetOptions {
        tuner: small_tuner_options(),
        ..Default::default()
    });
    let mut teacher = TenantSpec::named("teacher", WorkloadFamily::Ycsb, 51);
    teacher.deterministic = true;
    svc.admit(teacher).unwrap();
    let report = svc.run_rounds(12);
    println!(
        "teacher ran {} iterations (unsafe rate {:.3}); knowledge pools: {}",
        report.iterations,
        report.unsafe_rate(),
        svc.knowledge().n_pools()
    );

    // ── Phase 2: cold vs warm student on the same coordinate ──────────────────────────
    let key = PoolKey::for_tenant(&HardwareSpec::default(), WorkloadFamily::Ycsb);
    let warm_payload = svc.knowledge().warm_start(&key);
    println!(
        "warm-start payload: {} safe configs, {} observations",
        warm_payload.safe_configs.len(),
        warm_payload.observations.len()
    );

    let mut student = TenantSpec::named("student", WorkloadFamily::Ycsb, 77);
    student.deterministic = true;
    let mut cold = TenantSession::new(student.clone(), small_tuner_options()).unwrap();
    let mut warm = TenantSession::new(student, small_tuner_options()).unwrap();
    warm.warm_start(&warm_payload);

    for _ in 0..15 {
        cold.step();
        warm.step();
    }
    println!(
        "after 15 iterations: cold regret {:.1}, warm regret {:.1} ({:.0}% lower)",
        cold.cumulative_regret(),
        warm.cumulative_regret(),
        100.0 * (1.0 - warm.cumulative_regret() / cold.cumulative_regret().max(1e-9))
    );

    // ── Phase 3: snapshot / restore ───────────────────────────────────────────────────
    let json = svc.snapshot_json().expect("snapshot");
    println!(
        "fleet snapshot: {:.1} KiB of JSON",
        json.len() as f64 / 1024.0
    );
    let mut restored = FleetService::restore_json(&json).expect("restore");
    let cont = restored.run_rounds(2);
    println!(
        "restored fleet continued for {} more iterations across {} rounds",
        cont.iterations, cont.rounds
    );
}
