//! The 5-knob YCSB case study (paper §7.2) in miniature: tune only the five case-study
//! knobs on a YCSB workload whose read/write mix drifts, and compare against a brute-force
//! "Best" reference.
//!
//! ```bash
//! cargo run --release --example five_knob_case_study
//! ```

use featurize::ContextFeaturizer;
use onlinetune::{OnlineTune, OnlineTuneOptions};
use simdb::{Configuration, HardwareSpec, OptimizerStats, SimDatabase};
use workloads::ycsb::YcsbWorkload;
use workloads::WorkloadGenerator;

fn main() {
    let catalogue = YcsbWorkload::case_study_catalogue();
    println!(
        "tuning {} knobs: {:?}\n",
        catalogue.len(),
        YcsbWorkload::CASE_STUDY_KNOBS
    );

    let featurizer = ContextFeaturizer::with_defaults();
    let ycsb = YcsbWorkload::new(5);
    let initial = Configuration::dba_default(&catalogue);

    let mut db = SimDatabase::with_catalogue(catalogue.clone(), HardwareSpec::default(), 31);
    db.set_data_size(YcsbWorkload::INITIAL_DATA_GIB);
    let mut tuner = OnlineTune::new(
        catalogue.clone(),
        HardwareSpec::default(),
        featurizer.dim(),
        &initial,
        OnlineTuneOptions::default(),
        31,
    );

    let iterations = 120;
    let mut tuned_total = 0.0;
    let mut default_total = 0.0;
    let mut best_total = 0.0;
    let mut unsafe_count = 0;
    for it in 0..iterations {
        let spec = ycsb.spec_at(it);
        let queries = ycsb.sample_queries(it, 30);
        let stats = OptimizerStats::estimate(&spec);
        let context = featurizer.featurize(&queries, spec.arrival_rate_qps, &stats);
        let threshold = db.peek(&initial, &spec).throughput_tps;

        // Brute-force reference over a coarse grid of the two headline knobs.
        let mut best = f64::NEG_INFINITY;
        for bp in [0.5, 0.8, 0.95] {
            for heap in [0.2, 0.6, 0.9] {
                let mut unit = initial.normalized(&catalogue);
                unit[0] = bp;
                unit[1] = heap;
                best = best.max(
                    db.peek(&Configuration::from_normalized(&catalogue, &unit), &spec)
                        .throughput_tps,
                );
            }
        }

        let suggestion = tuner.suggest(&context, threshold, spec.clients);
        db.apply_config(&suggestion.config);
        let eval = db.run_interval(&spec, 180.0);
        let tps = eval.outcome.throughput_tps;
        if tps < threshold * 0.95 {
            unsafe_count += 1;
        }
        tuner
            .observe(
                &context,
                &suggestion.config,
                tps,
                Some(&eval.metrics),
                tps >= threshold * 0.95,
            )
            .expect("simulated measurements are finite");

        tuned_total += tps;
        default_total += threshold;
        best_total += best;
    }

    println!("mean throughput over {iterations} intervals (read ratio drifting 40%..100%):");
    println!(
        "  OnlineTune : {:>9.0} tps",
        tuned_total / iterations as f64
    );
    println!(
        "  DBA default: {:>9.0} tps",
        default_total / iterations as f64
    );
    println!("  Best (grid): {:>9.0} tps", best_total / iterations as f64);
    println!(
        "  unsafe intervals: {unsafe_count}, instance hangs: {}",
        db.failures()
    );
    println!("\nOnlineTune should sit between the DBA default and the per-phase Best, moving closer to Best as iterations accumulate while staying safe.");
}
