//! Quickstart: tune a simulated MySQL instance online for 30 three-minute intervals.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The loop below is the whole OnlineTune workflow: featurize the context, ask the tuner
//! for a safe configuration, apply it, run the interval, feed the observation back.

use featurize::ContextFeaturizer;
use onlinetune::{OnlineTune, OnlineTuneOptions};
use simdb::{Configuration, HardwareSpec, KnobCatalogue, OptimizerStats, SimDatabase};
use workloads::tpcc::TpccWorkload;
use workloads::WorkloadGenerator;

fn main() {
    // The simulated cloud database: 8 vCPU / 16 GiB, 40 tunable knobs, TPC-C data loaded.
    let catalogue = KnobCatalogue::mysql57();
    let mut db = SimDatabase::new(42);
    db.set_data_size(TpccWorkload::INITIAL_DATA_GIB);

    // The workload: TPC-C with a drifting transaction mix.
    let workload = TpccWorkload::new_dynamic(7);

    // Context featurization (workload embedding + optimizer statistics).
    let featurizer = ContextFeaturizer::with_defaults();

    // The tuner, seeded with the DBA default as the initial safety set.
    let initial = Configuration::dba_default(&catalogue);
    let mut tuner = OnlineTune::new(
        catalogue.clone(),
        HardwareSpec::default(),
        featurizer.dim(),
        &initial,
        OnlineTuneOptions::default(),
        1,
    );

    println!("iter  throughput(tps)  default(tps)  improvement  safety-set");
    let mut cumulative_gain = 0.0;
    for iteration in 0..30 {
        let spec = workload.spec_at(iteration);
        let queries = workload.sample_queries(iteration, 30);
        let stats = OptimizerStats::estimate(&spec);
        let context = featurizer.featurize(&queries, spec.arrival_rate_qps, &stats);

        // Safety threshold: the default configuration's performance under this workload.
        let default_tps = db.peek(&initial, &spec).throughput_tps;

        let suggestion = tuner.suggest(&context, default_tps, spec.clients);
        db.apply_config(&suggestion.config);
        let eval = db.run_interval(&spec, 180.0);
        let tps = eval.outcome.throughput_tps;
        cumulative_gain += (tps - default_tps) * 180.0;

        println!(
            "{iteration:>4}  {tps:>15.0}  {default_tps:>12.0}  {:>+10.1}%  {:>10}",
            (tps / default_tps - 1.0) * 100.0,
            suggestion.diagnostics.safety_set_size,
        );

        tuner
            .observe(
                &context,
                &suggestion.config,
                tps,
                Some(&eval.metrics),
                tps >= default_tps * 0.98,
            )
            .expect("simulated measurements are finite");
    }
    println!(
        "\ncumulative transactions gained vs. always running the DBA default: {cumulative_gain:+.0}"
    );
    println!("system failures during tuning: {}", db.failures());
}
