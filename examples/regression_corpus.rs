//! Regenerates the committed `tests/regressions/` corpus.
//!
//! Each corpus entry is a minimized [`FuzzCase`] that once violated a global property,
//! pinned so `tests/regressions.rs` (and the CI `regressions` job) replays it forever.
//! The corpus policy: an entry records the *minimized* reproducer, the distribution
//! whose property parameters it is replayed under, and a description of what it broke
//! and how it was found. Entries are regenerated — never hand-edited — by this example,
//! so the shrinker output and the committed artifact cannot drift apart:
//!
//! ```text
//! cargo run --release --example regression_corpus
//! ```
//!
//! Every write is preceded by a green [`RegressionCase::replay`]: committing a corpus
//! entry that fails on the current tree is impossible.

use fleet::fuzz::{
    run_fuzz_case, shrink_case, FuzzCase, PropertyRegistry, RegressionCase, ScenarioDistribution,
    ScenarioGenerator,
};
use fleet::scenario::ScenarioEvent;
use fleet::SessionHealth;

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regressions")
}

fn commit(entry: &RegressionCase) {
    let violations = entry.replay().expect("corpus entry must execute");
    assert!(
        violations.is_empty(),
        "refusing to commit `{}`: it fails on the current tree: {violations:?}",
        entry.name
    );
    let path = corpus_dir().join(format!("{}.json", entry.name));
    std::fs::create_dir_all(corpus_dir()).expect("create tests/regressions/");
    std::fs::write(&path, entry.to_json().expect("serialize")).expect("write corpus entry");
    println!(
        "wrote {} ({} events, {} rounds, {} tenants)",
        path.display(),
        entry.case.scenario.steps.len(),
        entry.case.rounds,
        entry.case.initial_tenants.len()
    );
}

/// Entry 1 — the migrate/fairness-floor false positive.
///
/// Found by the first smoke run of `scenario_fuzz`: `FleetService::migrate_tenant`
/// re-admits the session re-initialized on the new hardware, so its iteration counter
/// restarts — but the fairness property only recognized `admit …` fired strings as
/// rejoins, and flagged every migrated tenant as starved. The minimized reproducer is a
/// single migrate event; it is pinned so the fairness floor always treats migration as
/// a rejoin.
fn migrate_fairness_floor() -> RegressionCase {
    let dist = ScenarioDistribution::default();
    let mut generator = ScenarioGenerator::new(dist.clone(), 101);
    let case = std::iter::from_fn(|| Some(generator.next_case()))
        .take(200)
        .find(|c| {
            c.scenario
                .steps
                .iter()
                .any(|s| matches!(s.event, ScenarioEvent::Migrate { .. }))
        })
        .expect("seed 101 produces migrate events");
    let fails = |c: &FuzzCase| {
        c.scenario
            .steps
            .iter()
            .any(|s| matches!(s.event, ScenarioEvent::Migrate { .. }))
    };
    let case = shrink_case(&case, fails, 400);
    RegressionCase {
        name: "migrate_fairness_floor".into(),
        description: "Migration re-admits the session re-initialized on the new \
                      hardware, restarting its iteration counter; the fairness-floor \
                      property once recognized only `admit` events as rejoins and \
                      flagged every migrated tenant as starved. Found by the first \
                      scenario_fuzz smoke run (14/50 cases), minimized to one migrate."
            .into(),
        distribution: dist,
        case,
    }
}

/// Entry 2 — the cold-start unsafe-rate ceiling.
///
/// `fuzz-101-8` (the ninth case of generator seed 101) tripped the SLO property under
/// the original default ceiling of 0.60: an analytical tenant hit by a data-scale event
/// spent its whole short life in the exploration phase and reported an unsafe rate of
/// 0.636 over 11 iterations. The default ceiling was loosened to 0.75 (short fuzzed
/// horizons measure cold start, not steady state); the minimized case is pinned so the
/// ceiling stays calibrated against the worst known cold-start profile.
fn cold_start_unsafe_rate() -> RegressionCase {
    let dist = ScenarioDistribution::default();
    let historical = ScenarioDistribution {
        unsafe_rate_ceiling: 0.60,
        ..dist.clone()
    };
    let mut generator = ScenarioGenerator::new(dist.clone(), 101);
    let mut case = generator.next_case();
    for _ in 0..8 {
        case = generator.next_case();
    }
    assert_eq!(case.name, "fuzz-101-8");
    let registry = PropertyRegistry::standard();
    let fails = |c: &FuzzCase| {
        run_fuzz_case(c, &historical)
            .map(|a| {
                registry
                    .check_all(&a)
                    .iter()
                    .any(|v| v.property == "unsafe_rate_ceiling")
            })
            .unwrap_or(false)
    };
    assert!(
        fails(&case),
        "fuzz-101-8 must trip the historical 0.60 ceiling"
    );
    let case = shrink_case(&case, fails, 60);
    RegressionCase {
        name: "cold_start_unsafe_rate".into(),
        description: "fuzz-101-8 reported an unsafe rate of 0.636 over 11 iterations \
                      under the original default SLO ceiling of 0.60 — a short-lived \
                      analytical tenant measured entirely in its cold-start exploration \
                      phase after a data-scale event. Pinned (replayed under the \
                      loosened 0.75 default) as the worst known cold-start profile."
            .into(),
        distribution: dist,
        case,
    }
}

/// Entry 3 — a quarantine-exercising fault schedule.
///
/// Drawn from the fault-enabled distribution: an injected fault burst drives a tenant
/// through the whole backoff → quarantine → probe machinery while the crash leg kills
/// and recovers the fleet mid-timeline. Pinned (shrunk to the structural minimum that
/// still quarantines) so the retry state machine, the probe scheduling and WAL recovery
/// under active faults are replayed on every CI run.
fn fault_quarantine_schedule() -> RegressionCase {
    let dist = ScenarioDistribution::with_faults();
    let quarantines = |c: &FuzzCase| {
        run_fuzz_case(c, &dist)
            .map(|a| {
                a.rounds.iter().any(|r| {
                    r.tenants
                        .iter()
                        .any(|t| matches!(t.health, SessionHealth::Quarantined { .. }))
                })
            })
            .unwrap_or(false)
    };
    let mut generator = ScenarioGenerator::new(dist.clone(), 303);
    let case = std::iter::from_fn(|| Some(generator.next_case()))
        .take(120)
        .find(|c| quarantines(c))
        .expect("seed 303 with faults enabled produces a quarantining timeline");
    let case = shrink_case(&case, quarantines, 60);
    RegressionCase {
        name: "fault_quarantine_schedule".into(),
        description: "An injected fault burst exhausts a tenant's retry budget: the \
                      session walks backoff -> quarantine -> probation while the crash \
                      leg kills the durable fleet mid-timeline and recovers it from a \
                      torn WAL. Pinned from the first fault-enabled fuzz sweep as the \
                      minimal schedule that still quarantines, so the retry state \
                      machine and recovery-under-faults replay on every CI run."
            .into(),
        distribution: dist,
        case,
    }
}

fn main() {
    commit(&migrate_fairness_floor());
    commit(&cold_start_unsafe_rate());
    commit(&fault_quarantine_schedule());
}
