//! Tuning through a daily transactional–analytical cycle (the paper's §7.1.2 scenario):
//! TPC-C and JOB alternate and the tuner optimizes 99th-percentile latency.
//!
//! ```bash
//! cargo run --release --example transactional_analytical_cycle
//! ```
//!
//! The example shows the context clustering at work: after both phases have been seen, the
//! tuner maintains separate per-cluster models and re-selects the matching one when a phase
//! returns.

use featurize::ContextFeaturizer;
use onlinetune::{OnlineTune, OnlineTuneOptions};
use simdb::{Configuration, HardwareSpec, KnobCatalogue, OptimizerStats, SimDatabase};
use workloads::cycle::TransactionalAnalyticalCycle;
use workloads::{Objective, WorkloadGenerator};

fn main() {
    let catalogue = KnobCatalogue::mysql57();
    let featurizer = ContextFeaturizer::with_defaults();
    // Shorter phases than the paper's 100 iterations so the example finishes quickly.
    let cycle = TransactionalAnalyticalCycle::with_phase_length(9, 25);
    let initial = Configuration::dba_default(&catalogue);

    let mut db = SimDatabase::new(23);
    db.set_data_size(cycle.initial_data_size_gib());
    let mut tuner = OnlineTune::new(
        catalogue.clone(),
        HardwareSpec::default(),
        featurizer.dim(),
        &initial,
        OnlineTuneOptions::default(),
        23,
    );

    let iterations = 100;
    let mut phase_latency: Vec<(bool, f64, f64)> = Vec::new();
    for it in 0..iterations {
        let spec = cycle.spec_at(it);
        let queries = cycle.sample_queries(it, 30);
        let stats = OptimizerStats::estimate(&spec);
        let context = featurizer.featurize(&queries, spec.arrival_rate_qps, &stats);
        // The objective is p99 latency, so scores are negated latencies.
        let default_latency = db.peek(&initial, &spec).latency_p99_ms;
        let threshold = Objective::P99Latency.score(&simdb::PerformanceOutcome {
            throughput_tps: 0.0,
            latency_avg_ms: 0.0,
            latency_p99_ms: default_latency,
            failed: false,
        });

        let suggestion = tuner.suggest(&context, threshold, spec.clients);
        db.apply_config(&suggestion.config);
        let eval = db.run_interval(&spec, 180.0);
        let score = Objective::P99Latency.score(&eval.outcome);
        tuner
            .observe(
                &context,
                &suggestion.config,
                score,
                Some(&eval.metrics),
                score >= threshold * 1.05, // latency scores are negative; 5% slack
            )
            .expect("simulated measurements are finite");
        phase_latency.push((
            cycle.is_transactional_phase(it),
            eval.outcome.latency_p99_ms,
            default_latency,
        ));
    }

    let summarize = |transactional: bool, label: &str| {
        let rows: Vec<&(bool, f64, f64)> = phase_latency
            .iter()
            .filter(|(t, _, _)| *t == transactional)
            .collect();
        let tuned: f64 = rows.iter().map(|(_, l, _)| l).sum::<f64>() / rows.len() as f64;
        let default: f64 = rows.iter().map(|(_, _, d)| d).sum::<f64>() / rows.len() as f64;
        println!(
            "{label:<22} mean p99 latency: tuned {tuned:>9.1} ms   DBA default {default:>9.1} ms"
        );
    };
    summarize(true, "TPC-C phases");
    summarize(false, "JOB phases");
    println!(
        "\ncontext clusters maintained: {}   re-clusterings: {}",
        tuner.model_count(),
        tuner.recluster_count()
    );
    println!("After both phases have been visited, OnlineTune keeps one surrogate per phase and switches between them as the cycle repeats.");
}
