//! Safe vs. unsafe online tuning: OnlineTune compared with OtterTune-style BO on a live
//! (simulated) instance.
//!
//! ```bash
//! cargo run --release --example safe_vs_unsafe_tuning
//! ```
//!
//! Both tuners get the same number of intervals on the same Twitter-like workload; the
//! example prints how often each one pushed the database below the default performance and
//! whether it ever hung the instance — the paper's core safety argument (Figure 1c / 5).

use baselines::bo::{BoOptions, BoTuner};
use baselines::{OnlineTuneBaseline, Tuner, TuningInput};
use featurize::ContextFeaturizer;
use onlinetune::{OnlineTune, OnlineTuneOptions};
use simdb::{Configuration, HardwareSpec, KnobCatalogue, OptimizerStats, SimDatabase};
use workloads::twitter::TwitterWorkload;
use workloads::WorkloadGenerator;

fn run(tuner: &mut dyn Tuner, iterations: usize) -> (f64, usize, usize) {
    let catalogue = KnobCatalogue::mysql57();
    let featurizer = ContextFeaturizer::with_defaults();
    let workload = TwitterWorkload::new_dynamic(3);
    let mut db = SimDatabase::new(11);
    db.set_data_size(TwitterWorkload::INITIAL_DATA_GIB);
    let reference = Configuration::dba_default(&catalogue);

    let mut total_txn = 0.0;
    let mut unsafe_count = 0;
    let mut last_metrics = None;
    for it in 0..iterations {
        let spec = workload.spec_at(it);
        let queries = workload.sample_queries(it, 30);
        let stats = OptimizerStats::estimate(&spec);
        let context = featurizer.featurize(&queries, spec.arrival_rate_qps, &stats);
        let threshold = db.peek(&reference, &spec).throughput_tps;
        let input = TuningInput {
            context: &context,
            metrics: last_metrics.as_ref(),
            safety_threshold: threshold,
            clients: spec.clients,
        };
        let cfg = tuner.suggest(&input);
        db.apply_config(&cfg);
        let eval = db.run_interval(&spec, 180.0);
        let tps = eval.outcome.throughput_tps;
        total_txn += tps * 180.0;
        if eval.outcome.failed || tps < threshold * 0.95 {
            unsafe_count += 1;
        }
        tuner.observe(&input, &cfg, tps, &eval.metrics, tps >= threshold * 0.95);
        last_metrics = Some(eval.metrics);
    }
    (total_txn, unsafe_count, db.failures())
}

fn main() {
    let iterations = 80;
    let catalogue = KnobCatalogue::mysql57();
    let featurizer_dim = ContextFeaturizer::with_defaults().dim();

    let mut online = OnlineTuneBaseline::new(OnlineTune::new(
        catalogue.clone(),
        HardwareSpec::default(),
        featurizer_dim,
        &Configuration::dba_default(&catalogue),
        OnlineTuneOptions::default(),
        5,
    ));
    let mut bo = BoTuner::new(catalogue.clone(), BoOptions::default(), 5);

    println!("tuning a live Twitter-like workload for {iterations} intervals with each tuner\n");
    for (name, tuner) in [
        ("OnlineTune", &mut online as &mut dyn Tuner),
        ("BO (OtterTune-style)", &mut bo as &mut dyn Tuner),
    ] {
        let (txn, unsafe_count, failures) = run(tuner, iterations);
        println!(
            "{name:<22}  transactions processed: {txn:>12.2e}   unsafe intervals: {unsafe_count:>3}   instance hangs: {failures}"
        );
    }
    println!("\nOnlineTune should process more transactions while recommending an order of magnitude fewer unsafe configurations and never hanging the instance.");
}
