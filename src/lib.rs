//! # OnlineTune reproduction — workspace façade
//!
//! This crate re-exports the public API of every crate in the workspace so that examples,
//! integration tests and downstream users can depend on a single package.
//!
//! The primary contribution of the reproduced paper lives in [`onlinetune`]; the simulated
//! cloud DBMS substrate is in [`simdb`]; workload generators are in [`workloads`]; the
//! baselines from the paper's evaluation are in [`baselines`].
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system inventory.

/// Compiles and runs the code blocks in `README.md` as doc tests, so the README examples
/// can never drift from the real API. Exists only while rustdoc collects doc tests.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

pub use baselines;
pub use featurize;
pub use fleet;
pub use gp;
pub use linalg;
pub use mlkit;
pub use onlinetune;
pub use simdb;
pub use telemetry;
pub use workloads;
