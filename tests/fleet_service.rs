//! Integration tests of the fleet subsystem: snapshot→restore→replay determinism,
//! cross-tenant warm start, and scheduler fairness.

use fleet::knowledge::PoolKey;
use fleet::service::{small_tuner_options, FleetOptions, FleetService};
use fleet::tenant::{TenantSession, TenantSpec, WorkloadFamily};

fn spec(name: &str, family: WorkloadFamily, seed: u64, deterministic: bool) -> TenantSpec {
    let mut s = TenantSpec::named(name, family, seed);
    s.deterministic = deterministic;
    s
}

fn mixed_service(n_tenants: usize, deterministic: bool) -> FleetService {
    let mut svc = FleetService::new(FleetOptions {
        tuner: small_tuner_options(),
        ..Default::default()
    });
    for i in 0..n_tenants {
        let family = WorkloadFamily::ALL[i % WorkloadFamily::ALL.len()];
        svc.admit(spec(
            &format!("tenant-{i}"),
            family,
            4000 + i as u64,
            deterministic,
        ))
        .unwrap();
    }
    svc
}

/// The headline snapshot/restore guarantee: a fleet restored from its JSON snapshot
/// replays *bit-identically* against the original that kept running — same regrets, same
/// scores, same unsafe counts, with measurement noise enabled (the noise RNG streams are
/// part of the snapshot).
#[test]
fn fleet_snapshot_restore_replays_bit_identically() {
    let mut original = mixed_service(3, false);
    original.run_rounds(2);

    let json = original.snapshot_json().expect("snapshot serializes");
    let mut restored = FleetService::restore_json(&json).expect("snapshot restores");

    original.run_rounds(3);
    restored.run_rounds(3);

    let a = original.summaries();
    let b = restored.summaries();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.iterations, y.iterations, "{}", x.name);
        assert_eq!(x.unsafe_count, y.unsafe_count, "{}", x.name);
        assert_eq!(
            x.cumulative_regret.to_bits(),
            y.cumulative_regret.to_bits(),
            "{}: {} vs {}",
            x.name,
            x.cumulative_regret,
            y.cumulative_regret
        );
        assert_eq!(
            x.total_score.to_bits(),
            y.total_score.to_bits(),
            "{}: scores diverged",
            x.name
        );
    }
    assert_eq!(original.rounds(), restored.rounds());
    assert_eq!(original.granted_slots(), restored.granted_slots());
}

/// A warm-started tenant (seeded with the knowledge base's safe configurations and
/// observations from a sibling on the same hardware class and workload family) must show
/// lower early cumulative regret than an otherwise identical cold-started tenant.
#[test]
fn warm_start_beats_cold_start_on_early_regret() {
    // A teacher tenant populates the knowledge base for (default hardware, YCSB).
    let mut teacher_fleet = FleetService::new(FleetOptions {
        tuner: small_tuner_options(),
        ..Default::default()
    });
    teacher_fleet
        .admit(spec("teacher", WorkloadFamily::Ycsb, 51, true))
        .unwrap();
    teacher_fleet.run_rounds(12);
    let key = PoolKey::for_tenant(&simdb::HardwareSpec::default(), WorkloadFamily::Ycsb);
    let warm = teacher_fleet.knowledge().warm_start(&key);
    assert!(!warm.is_empty(), "teacher must have contributed knowledge");

    // Two identical students; one receives the warm start.
    let student_spec = spec("student", WorkloadFamily::Ycsb, 77, true);
    let mut cold = TenantSession::new(student_spec.clone(), small_tuner_options()).unwrap();
    let mut warm_student = TenantSession::new(student_spec, small_tuner_options()).unwrap();
    warm_student.warm_start(&warm);

    let steps = 15;
    for _ in 0..steps {
        cold.step();
        warm_student.step();
    }
    assert!(
        warm_student.cumulative_regret() < cold.cumulative_regret(),
        "warm start must lower early regret: warm {} vs cold {}",
        warm_student.cumulative_regret(),
        cold.cumulative_regret()
    );
}

/// Round-robin fairness: over any number of rounds, every tenant runs at least the base
/// slot count per round, and no tenant can exceed the base+bonus ceiling — so no tenant
/// starves no matter how skewed the regret distribution is.
#[test]
fn scheduler_never_starves_a_tenant() {
    let rounds = 6;
    let mut svc = mixed_service(6, true);
    svc.run_rounds(rounds);
    let summaries = svc.summaries();
    let granted = svc.granted_slots().to_vec();
    for (i, t) in summaries.iter().enumerate() {
        assert!(
            t.iterations >= rounds,
            "{} starved: {} iterations in {rounds} rounds",
            t.name,
            t.iterations
        );
        assert!(
            t.iterations <= rounds * 3,
            "{} exceeded the slot ceiling: {}",
            t.name,
            t.iterations
        );
        assert_eq!(
            granted[i], t.iterations,
            "grants must match executed iterations"
        );
    }
    // The bonus pool was actually used by at least one tenant in a fleet this size
    // (someone always has the highest recent regret).
    assert!(
        summaries.iter().any(|t| t.iterations > rounds),
        "priority bonus never granted"
    );
}

/// Tenants on different coordinates do not leak knowledge to each other, while same-
/// coordinate tenants do share.
#[test]
fn knowledge_pools_are_isolated_by_coordinate() {
    let mut svc = FleetService::new(FleetOptions {
        tuner: small_tuner_options(),
        ..Default::default()
    });
    svc.admit(spec("a", WorkloadFamily::Ycsb, 1, true)).unwrap();
    svc.admit(spec("b", WorkloadFamily::Job, 2, true)).unwrap();
    svc.run_rounds(3);

    let hw = simdb::HardwareSpec::default();
    let ycsb = svc
        .knowledge()
        .warm_start(&PoolKey::for_tenant(&hw, WorkloadFamily::Ycsb));
    let job = svc
        .knowledge()
        .warm_start(&PoolKey::for_tenant(&hw, WorkloadFamily::Job));
    let tpcc = svc
        .knowledge()
        .warm_start(&PoolKey::for_tenant(&hw, WorkloadFamily::Tpcc));
    assert!(!ycsb.is_empty());
    assert!(!job.is_empty());
    assert!(
        tpcc.is_empty(),
        "no TPC-C tenant ran, so no TPC-C knowledge may exist"
    );

    let mut other_hw = hw;
    other_hw.vcpus = 32;
    let other = svc
        .knowledge()
        .warm_start(&PoolKey::for_tenant(&other_hw, WorkloadFamily::Ycsb));
    assert!(
        other.is_empty(),
        "a different hardware class must not inherit knowledge"
    );
}
