//! Property tests of the dynamic-environment engine: the snapshot/replay contract must
//! survive scripted environment change, and the scheduler's fairness floor must survive
//! tenant churn — independently of the worker thread count.

use fleet::scenario::{run_scenario, Scenario, ScenarioEvent};
use fleet::service::{small_tuner_options, FleetOptions, FleetService};
use fleet::tenant::{TenantSpec, TenantSummary, WorkloadDrift, WorkloadFamily};
use proptest::prelude::*;
use simdb::HardwareSpec;

fn spec(name: &str, family: WorkloadFamily, seed: u64, deterministic: bool) -> TenantSpec {
    let mut s = TenantSpec::named(name, family, seed);
    s.deterministic = deterministic;
    s
}

fn service(workers: usize, seed: u64, deterministic: bool) -> FleetService {
    let mut svc = FleetService::new(FleetOptions {
        workers,
        tuner: small_tuner_options(),
        ..Default::default()
    });
    for (i, family) in [
        WorkloadFamily::Ycsb,
        WorkloadFamily::Tpcc,
        WorkloadFamily::Twitter,
    ]
    .iter()
    .enumerate()
    {
        svc.admit(spec(
            &format!("t{i}"),
            *family,
            seed * 100 + i as u64,
            deterministic,
        ))
        .unwrap();
    }
    svc
}

/// A drift + resize + churn timeline whose event rounds are derived deterministically
/// from `seed`, covering every event kind within `rounds` rounds.
fn dynamic_scenario(seed: u64, rounds: usize) -> Scenario {
    let r =
        |salt: u64| (seed.wrapping_mul(0x9E37_79B9).wrapping_add(salt) % rounds as u64) as usize;
    Scenario::new(format!("dynamic-{seed}"))
        .at(
            r(1),
            ScenarioEvent::Drift {
                tenant: "t0".into(),
                drift: WorkloadDrift::FamilySwitch {
                    at: 0,
                    to: WorkloadFamily::Job,
                },
            },
        )
        .at(
            r(2),
            ScenarioEvent::Resize {
                tenant: "t1".into(),
                hardware: HardwareSpec::default().scaled(2.0),
            },
        )
        .at(
            r(3),
            ScenarioEvent::ScaleData {
                tenant: "t1".into(),
                factor: 1.4,
            },
        )
        .at(
            r(4),
            ScenarioEvent::Remove {
                tenant: "t2".into(),
            },
        )
        .at(
            r(4) + 2,
            ScenarioEvent::Admit {
                spec: spec("t2", WorkloadFamily::Twitter, seed + 999, true),
            },
        )
        .at(
            r(5),
            ScenarioEvent::Drift {
                tenant: "t1".into(),
                drift: WorkloadDrift::RateRamp {
                    start: 0,
                    over: 10,
                    from_scale: 1.0,
                    to_scale: 1.6,
                },
            },
        )
}

fn assert_bitwise_equal(a: &[TenantSummary], b: &[TenantSummary], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: tenant counts differ");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.name, y.name, "{label}");
        assert_eq!(x.iterations, y.iterations, "{label}: {}", x.name);
        assert_eq!(x.unsafe_count, y.unsafe_count, "{label}: {}", x.name);
        assert_eq!(x.n_models, y.n_models, "{label}: {}", x.name);
        assert_eq!(x.recluster_count, y.recluster_count, "{label}: {}", x.name);
        assert_eq!(
            x.cumulative_regret.to_bits(),
            y.cumulative_regret.to_bits(),
            "{label}: {} regret {} vs {}",
            x.name,
            x.cumulative_regret,
            y.cumulative_regret
        );
        assert_eq!(
            x.total_score.to_bits(),
            y.total_score.to_bits(),
            "{label}: {} scores diverged",
            x.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The tentpole replay contract: a snapshot taken mid-scenario — between any two
    /// rounds, i.e. between any two environment events — restores into a service that
    /// replays the remaining timeline bit-identically to the run that was never
    /// interrupted. Measurement noise stays ON: the instance RNG streams are part of the
    /// snapshot and must survive environment events too.
    #[test]
    fn prop_mid_scenario_snapshot_replays_bit_identically(seed in 0u64..10_000, cut in 1usize..10) {
        let rounds = 10;
        let scenario = dynamic_scenario(seed, rounds);

        let mut uninterrupted = service(2, seed, false);
        run_scenario(&mut uninterrupted, &scenario, rounds).unwrap();

        let mut first_half = service(2, seed, false);
        run_scenario(&mut first_half, &scenario, cut).unwrap();
        let json = first_half.snapshot_json().unwrap();
        drop(first_half);
        let mut resumed = FleetService::restore_json(&json).unwrap();
        run_scenario(&mut resumed, &scenario, rounds - cut).unwrap();

        assert_bitwise_equal(
            &uninterrupted.summaries(),
            &resumed.summaries(),
            &format!("cut at round {cut}"),
        );
        assert_eq!(uninterrupted.rounds(), resumed.rounds());
        assert_eq!(uninterrupted.granted_slots(), resumed.granted_slots());
        assert_eq!(uninterrupted.knowledge().n_pools(), resumed.knowledge().n_pools());
    }

    /// Scheduler fairness under churn: across a random join/leave timeline, every tenant
    /// alive for a full round advances by at least `base_slots` (= 1) iterations in that
    /// round — nobody starves, no matter which tenants join or leave around them.
    #[test]
    fn prop_no_live_tenant_starves_under_churn(seed in 0u64..10_000) {
        let rounds = 12;
        let scenario = dynamic_scenario(seed, rounds);
        let mut svc = service(2, seed, true);
        let report = run_scenario(&mut svc, &scenario, rounds).unwrap();

        let mut previous: Vec<TenantSummary> = Vec::new();
        for record in &report.rounds {
            for t in &record.tenants {
                let before = previous
                    .iter()
                    .find(|p| p.name == t.name)
                    .map_or(0, |p| p.iterations);
                // A migrated/re-admitted tenant restarts from 0; it still must have run
                // this round. Everyone else must advance by >= base_slots.
                let floor = if t.iterations < before { 1 } else { before + 1 };
                assert!(
                    t.iterations >= floor,
                    "round {}: {} starved ({} iterations, had {})",
                    record.round,
                    t.name,
                    t.iterations,
                    before
                );
            }
            previous = record.tenants.clone();
        }
    }

    /// The scenario outcome is independent of the worker thread count: one worker and
    /// four workers produce bitwise-identical fleets. Churn changes the tenant/chunk
    /// layout mid-run, so this extends the existing parallel-equals-serial guarantee to
    /// dynamic fleets.
    #[test]
    fn prop_outcome_independent_of_worker_count(seed in 0u64..10_000) {
        let rounds = 8;
        let scenario = dynamic_scenario(seed, rounds);

        let mut serial = service(1, seed, false);
        run_scenario(&mut serial, &scenario, rounds).unwrap();
        let mut parallel = service(4, seed, false);
        run_scenario(&mut parallel, &scenario, rounds).unwrap();

        assert_bitwise_equal(&serial.summaries(), &parallel.summaries(), "workers 1 vs 4");
        assert_eq!(serial.granted_slots(), parallel.granted_slots());
    }

    /// A scenario survives a serde round-trip verbatim, and the round-tripped value
    /// drives a fleet to the same bitwise outcome.
    #[test]
    fn prop_scenario_serde_round_trip_preserves_replay(seed in 0u64..10_000) {
        let scenario = dynamic_scenario(seed, 8);
        let back = Scenario::from_json(&scenario.to_json().unwrap()).unwrap();
        prop_assert_eq!(&scenario, &back);

        let mut a = service(2, seed, true);
        let mut b = service(2, seed, true);
        run_scenario(&mut a, &scenario, 8).unwrap();
        run_scenario(&mut b, &back, 8).unwrap();
        assert_bitwise_equal(&a.summaries(), &b.summaries(), "serde round-trip");
    }
}
