//! Integration tests comparing OnlineTune with the offline baselines on the simulated
//! instance — the qualitative safety claim of the paper must hold end to end.

use baselines::bo::{BoOptions, BoTuner};
use baselines::ddpg::{DdpgOptions, DdpgTuner};
use baselines::{OnlineTuneBaseline, Tuner, TuningInput};
use featurize::ContextFeaturizer;
use onlinetune::{OnlineTune, OnlineTuneOptions};
use simdb::{Configuration, HardwareSpec, KnobCatalogue, OptimizerStats, SimDatabase};
use workloads::tpcc::TpccWorkload;
use workloads::WorkloadGenerator;

fn run(tuner: &mut dyn Tuner, iterations: usize) -> (usize, usize) {
    let catalogue = KnobCatalogue::mysql57();
    let featurizer = ContextFeaturizer::with_defaults();
    let generator = TpccWorkload::new_dynamic(5);
    let reference = Configuration::dba_default(&catalogue);
    let mut db = SimDatabase::new(55);
    db.set_data_size(generator.initial_data_size_gib());
    let mut unsafe_count = 0;
    let mut last_metrics = None;
    for it in 0..iterations {
        let spec = generator.spec_at(it);
        let queries = generator.sample_queries(it, 25);
        let stats = OptimizerStats::estimate(&spec);
        let context = featurizer.featurize(&queries, spec.arrival_rate_qps, &stats);
        let threshold = db.peek(&reference, &spec).throughput_tps;
        let input = TuningInput {
            context: &context,
            metrics: last_metrics.as_ref(),
            safety_threshold: threshold,
            clients: spec.clients,
        };
        let cfg = tuner.suggest(&input);
        db.apply_config(&cfg);
        let eval = db.run_interval(&spec, 180.0);
        if eval.outcome.failed || eval.outcome.throughput_tps < threshold * 0.95 {
            unsafe_count += 1;
        }
        tuner.observe(
            &input,
            &cfg,
            eval.outcome.throughput_tps,
            &eval.metrics,
            eval.outcome.throughput_tps >= threshold * 0.95,
        );
        last_metrics = Some(eval.metrics);
    }
    (unsafe_count, db.failures())
}

#[test]
fn onlinetune_is_far_safer_than_bo_and_ddpg_on_a_live_instance() {
    let catalogue = KnobCatalogue::mysql57();
    let featurizer_dim = ContextFeaturizer::with_defaults().dim();
    let iterations = 40;

    let mut online = OnlineTuneBaseline::new(OnlineTune::new(
        catalogue.clone(),
        HardwareSpec::default(),
        featurizer_dim,
        &Configuration::dba_default(&catalogue),
        OnlineTuneOptions::default(),
        9,
    ));
    let (online_unsafe, online_failures) = run(&mut online, iterations);

    let mut bo = BoTuner::new(catalogue.clone(), BoOptions::default(), 9);
    let (bo_unsafe, _) = run(&mut bo, iterations);

    let mut ddpg = DdpgTuner::new(catalogue.clone(), DdpgOptions::default(), 9);
    let (ddpg_unsafe, _) = run(&mut ddpg, iterations);

    assert_eq!(online_failures, 0, "OnlineTune must not hang the instance");
    assert!(
        online_unsafe * 3 <= bo_unsafe.max(1),
        "OnlineTune ({online_unsafe}) should be at least 3x safer than BO ({bo_unsafe})"
    );
    assert!(
        online_unsafe * 3 <= ddpg_unsafe.max(1),
        "OnlineTune ({online_unsafe}) should be at least 3x safer than DDPG ({ddpg_unsafe})"
    );
}
