//! Property tests of the observability no-feedback contract: telemetry may watch a
//! fleet, but it must never change what the fleet does. A scenario run with a live
//! telemetry sink must produce byte-identical snapshots and bitwise-identical tenant
//! summaries to the same run with the no-op sink — including across a mid-scenario
//! snapshot/restore cut, and regardless of whether telemetry is reconfigured mid-run.

use fleet::scenario::{run_scenario, Scenario, ScenarioEvent};
use fleet::service::{small_tuner_options, FleetOptions, FleetService};
use fleet::tenant::{TenantSpec, TenantSummary, WorkloadDrift, WorkloadFamily};
use proptest::prelude::*;
use simdb::HardwareSpec;
use telemetry::{CounterId, TelemetryConfig, TelemetryHandle};

fn spec(name: &str, family: WorkloadFamily, seed: u64) -> TenantSpec {
    // Measurement noise stays ON: the instance RNG streams are the most fragile part of
    // the replay contract, and telemetry must not consume or reorder a single draw.
    TenantSpec::named(name, family, seed)
}

fn service(seed: u64, telemetry: TelemetryHandle) -> FleetService {
    let mut svc = FleetService::new(FleetOptions {
        workers: 2,
        tuner: small_tuner_options(),
        ..Default::default()
    });
    svc.set_telemetry(telemetry);
    for (i, family) in [
        WorkloadFamily::Ycsb,
        WorkloadFamily::Tpcc,
        WorkloadFamily::Twitter,
    ]
    .iter()
    .enumerate()
    {
        svc.admit(spec(&format!("t{i}"), *family, seed * 100 + i as u64));
    }
    svc
}

/// A timeline covering drift, resize, data growth and churn, with event rounds derived
/// deterministically from `seed`.
fn dynamic_scenario(seed: u64, rounds: usize) -> Scenario {
    let r =
        |salt: u64| (seed.wrapping_mul(0x9E37_79B9).wrapping_add(salt) % rounds as u64) as usize;
    Scenario::new(format!("telemetry-{seed}"))
        .at(
            r(1),
            ScenarioEvent::Drift {
                tenant: "t0".into(),
                drift: WorkloadDrift::FamilySwitch {
                    at: 0,
                    to: WorkloadFamily::Job,
                },
            },
        )
        .at(
            r(2),
            ScenarioEvent::Resize {
                tenant: "t1".into(),
                hardware: HardwareSpec::default().scaled(2.0),
            },
        )
        .at(
            r(3),
            ScenarioEvent::ScaleData {
                tenant: "t1".into(),
                factor: 1.3,
            },
        )
        .at(
            r(4),
            ScenarioEvent::Remove {
                tenant: "t2".into(),
            },
        )
        .at(
            r(4) + 2,
            ScenarioEvent::Admit {
                spec: spec("t2", WorkloadFamily::Twitter, seed + 999),
            },
        )
}

fn assert_bitwise_equal(a: &[TenantSummary], b: &[TenantSummary], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: tenant counts differ");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.name, y.name, "{label}");
        assert_eq!(x.iterations, y.iterations, "{label}: {}", x.name);
        assert_eq!(x.unsafe_count, y.unsafe_count, "{label}: {}", x.name);
        assert_eq!(x.n_models, y.n_models, "{label}: {}", x.name);
        assert_eq!(x.recluster_count, y.recluster_count, "{label}: {}", x.name);
        assert_eq!(x.warm_start_safe, y.warm_start_safe, "{label}: {}", x.name);
        assert_eq!(
            x.warm_start_observations, y.warm_start_observations,
            "{label}: {}",
            x.name
        );
        assert_eq!(
            x.cumulative_regret.to_bits(),
            y.cumulative_regret.to_bits(),
            "{label}: {} regret diverged",
            x.name
        );
        assert_eq!(
            x.total_score.to_bits(),
            y.total_score.to_bits(),
            "{label}: {} scores diverged",
            x.name
        );
    }
}

/// Runs `scenario` for `rounds` rounds, collecting the summary stream after every round
/// and the final snapshot JSON.
fn run_collecting(
    svc: &mut FleetService,
    scenario: &Scenario,
    rounds: usize,
) -> (Vec<Vec<TenantSummary>>, String) {
    let mut streams = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        run_scenario(svc, scenario, 1).unwrap();
        streams.push(svc.summaries());
    }
    (streams, svc.snapshot_json().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The tentpole contract: a live telemetry sink changes nothing — not one byte of the
    /// snapshot, not one bit of any per-round tenant summary.
    #[test]
    fn prop_telemetry_never_perturbs_the_fleet(seed in 0u64..10_000) {
        let rounds = 8;
        let scenario = dynamic_scenario(seed, rounds);

        let mut silent = service(seed, TelemetryHandle::disabled());
        let mut observed = service(seed, TelemetryHandle::enabled());
        let (silent_stream, silent_json) = run_collecting(&mut silent, &scenario, rounds);
        let (observed_stream, observed_json) = run_collecting(&mut observed, &scenario, rounds);

        prop_assert_eq!(silent_json, observed_json, "snapshot bytes diverged");
        for (round, (a, b)) in silent_stream.iter().zip(observed_stream.iter()).enumerate() {
            assert_bitwise_equal(a, b, &format!("round {round}"));
        }
        // The observed fleet did record real work while staying invisible.
        let metrics = observed.metrics_snapshot();
        prop_assert!(metrics.counter(CounterId::Iterations) > 0);
        prop_assert!(metrics.counter(CounterId::KbContributions) > 0);
    }

    /// The contract holds across a mid-scenario snapshot/restore cut, with telemetry
    /// configured differently on every leg: the reference run observed throughout, the
    /// resumed run restored onto a *reconfigured* sink (different journal capacity and
    /// SLO ceiling). Snapshot bytes at the cut and at the end must match the silent run.
    #[test]
    fn prop_restore_cut_with_reconfigured_telemetry_stays_identical(
        seed in 0u64..10_000,
        cut in 1usize..8,
    ) {
        let rounds = 8;
        let scenario = dynamic_scenario(seed, rounds);

        let mut silent = service(seed, TelemetryHandle::disabled());
        run_scenario(&mut silent, &scenario, rounds).unwrap();
        let silent_json = silent.snapshot_json().unwrap();

        let mut first_half = service(seed, TelemetryHandle::enabled());
        run_scenario(&mut first_half, &scenario, cut).unwrap();
        let cut_json = first_half.snapshot_json().unwrap();
        drop(first_half);

        // Restore onto a sink with a non-default configuration: SLO policy and journal
        // bounds are runtime-only, so this must not show up anywhere in the replay.
        let reconfigured = TelemetryHandle::with_clock(
            std::sync::Arc::new(telemetry::MonotonicClock::new()),
            TelemetryConfig {
                journal_capacity: 8,
                unsafe_rate_ceiling: 0.5,
            },
        );
        let snapshot = serde_json::from_str(&cut_json).map_err(|e| e.to_string()).unwrap();
        let mut resumed = FleetService::restore_with_telemetry(snapshot, reconfigured).unwrap();
        run_scenario(&mut resumed, &scenario, rounds - cut).unwrap();

        prop_assert_eq!(
            silent_json,
            resumed.snapshot_json().unwrap(),
            "telemetry-reconfigured restore diverged from the silent run"
        );
        assert_bitwise_equal(
            &silent.summaries(),
            &resumed.summaries(),
            &format!("cut at round {cut}"),
        );
        prop_assert_eq!(resumed.metrics_snapshot().counter(CounterId::RestoresCompleted), 1);
        // The reconfigured ceiling reaches the SLO report, proving the policy is live
        // even though it is invisible to the replay.
        for slo in resumed.slo_reports() {
            prop_assert_eq!(slo.unsafe_ceiling, 0.5);
        }
    }

    /// Toggling telemetry mid-run (off → on → off) leaves the fleet bit-identical to a
    /// fleet that never had a sink installed.
    #[test]
    fn prop_mid_run_toggle_is_invisible(seed in 0u64..10_000) {
        let rounds = 6;
        let scenario = dynamic_scenario(seed, rounds);

        let mut silent = service(seed, TelemetryHandle::disabled());
        run_scenario(&mut silent, &scenario, rounds).unwrap();

        let mut toggled = service(seed, TelemetryHandle::disabled());
        run_scenario(&mut toggled, &scenario, 2).unwrap();
        toggled.set_telemetry(TelemetryHandle::enabled());
        run_scenario(&mut toggled, &scenario, 2).unwrap();
        toggled.set_telemetry(TelemetryHandle::disabled());
        run_scenario(&mut toggled, &scenario, rounds - 4).unwrap();

        prop_assert_eq!(
            silent.snapshot_json().unwrap(),
            toggled.snapshot_json().unwrap(),
            "mid-run telemetry toggle changed snapshot bytes"
        );
        assert_bitwise_equal(&silent.summaries(), &toggled.summaries(), "toggle");
    }
}
