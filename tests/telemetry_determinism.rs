//! Property tests of the observability no-feedback contract: telemetry may watch a
//! fleet, but it must never change what the fleet does. A scenario run with a live
//! telemetry sink must produce byte-identical snapshots and bitwise-identical tenant
//! summaries to the same run with the no-op sink — including across a mid-scenario
//! snapshot/restore cut, and regardless of whether telemetry is reconfigured mid-run.

use fleet::scenario::{run_scenario, Scenario, ScenarioEvent};
use fleet::service::{small_tuner_options, FleetOptions, FleetService};
use fleet::tenant::{TenantSpec, TenantSummary, WorkloadDrift, WorkloadFamily};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simdb::HardwareSpec;
use telemetry::{CounterId, MonotonicClock, TelemetryConfig, TelemetryHandle};

fn spec(name: &str, family: WorkloadFamily, seed: u64) -> TenantSpec {
    // Measurement noise stays ON: the instance RNG streams are the most fragile part of
    // the replay contract, and telemetry must not consume or reorder a single draw.
    TenantSpec::named(name, family, seed)
}

fn service(seed: u64, telemetry: TelemetryHandle) -> FleetService {
    let mut svc = FleetService::new(FleetOptions {
        workers: 2,
        tuner: small_tuner_options(),
        ..Default::default()
    });
    svc.set_telemetry(telemetry);
    for (i, family) in [
        WorkloadFamily::Ycsb,
        WorkloadFamily::Tpcc,
        WorkloadFamily::Twitter,
    ]
    .iter()
    .enumerate()
    {
        svc.admit(spec(&format!("t{i}"), *family, seed * 100 + i as u64))
            .unwrap();
    }
    svc
}

/// A timeline covering drift, resize, data growth and churn, with event rounds derived
/// deterministically from `seed`.
fn dynamic_scenario(seed: u64, rounds: usize) -> Scenario {
    let r =
        |salt: u64| (seed.wrapping_mul(0x9E37_79B9).wrapping_add(salt) % rounds as u64) as usize;
    Scenario::new(format!("telemetry-{seed}"))
        .at(
            r(1),
            ScenarioEvent::Drift {
                tenant: "t0".into(),
                drift: WorkloadDrift::FamilySwitch {
                    at: 0,
                    to: WorkloadFamily::Job,
                },
            },
        )
        .at(
            r(2),
            ScenarioEvent::Resize {
                tenant: "t1".into(),
                hardware: HardwareSpec::default().scaled(2.0),
            },
        )
        .at(
            r(3),
            ScenarioEvent::ScaleData {
                tenant: "t1".into(),
                factor: 1.3,
            },
        )
        .at(
            r(4),
            ScenarioEvent::Remove {
                tenant: "t2".into(),
            },
        )
        .at(
            r(4) + 2,
            ScenarioEvent::Admit {
                spec: spec("t2", WorkloadFamily::Twitter, seed + 999),
            },
        )
}

fn assert_bitwise_equal(a: &[TenantSummary], b: &[TenantSummary], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: tenant counts differ");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.name, y.name, "{label}");
        assert_eq!(x.iterations, y.iterations, "{label}: {}", x.name);
        assert_eq!(x.unsafe_count, y.unsafe_count, "{label}: {}", x.name);
        assert_eq!(x.n_models, y.n_models, "{label}: {}", x.name);
        assert_eq!(x.recluster_count, y.recluster_count, "{label}: {}", x.name);
        assert_eq!(x.warm_start_safe, y.warm_start_safe, "{label}: {}", x.name);
        assert_eq!(
            x.warm_start_observations, y.warm_start_observations,
            "{label}: {}",
            x.name
        );
        assert_eq!(
            x.cumulative_regret.to_bits(),
            y.cumulative_regret.to_bits(),
            "{label}: {} regret diverged",
            x.name
        );
        assert_eq!(
            x.total_score.to_bits(),
            y.total_score.to_bits(),
            "{label}: {} scores diverged",
            x.name
        );
    }
}

/// Runs `scenario` for `rounds` rounds, collecting the summary stream after every round
/// and the final snapshot JSON.
fn run_collecting(
    svc: &mut FleetService,
    scenario: &Scenario,
    rounds: usize,
) -> (Vec<Vec<TenantSummary>>, String) {
    let mut streams = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        run_scenario(svc, scenario, 1).unwrap();
        streams.push(svc.summaries());
    }
    (streams, svc.snapshot_json().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The tentpole contract: a live telemetry sink changes nothing — not one byte of the
    /// snapshot, not one bit of any per-round tenant summary.
    #[test]
    fn prop_telemetry_never_perturbs_the_fleet(seed in 0u64..10_000) {
        let rounds = 8;
        let scenario = dynamic_scenario(seed, rounds);

        let mut silent = service(seed, TelemetryHandle::disabled());
        let mut observed = service(seed, TelemetryHandle::enabled());
        let (silent_stream, silent_json) = run_collecting(&mut silent, &scenario, rounds);
        let (observed_stream, observed_json) = run_collecting(&mut observed, &scenario, rounds);

        prop_assert_eq!(silent_json, observed_json, "snapshot bytes diverged");
        for (round, (a, b)) in silent_stream.iter().zip(observed_stream.iter()).enumerate() {
            assert_bitwise_equal(a, b, &format!("round {round}"));
        }
        // The observed fleet did record real work while staying invisible.
        let metrics = observed.metrics_snapshot();
        prop_assert!(metrics.counter(CounterId::Iterations) > 0);
        prop_assert!(metrics.counter(CounterId::KbContributions) > 0);
    }

    /// The contract holds across a mid-scenario snapshot/restore cut, with telemetry
    /// configured differently on every leg: the reference run observed throughout, the
    /// resumed run restored onto a *reconfigured* sink (different journal capacity and
    /// SLO ceiling). Snapshot bytes at the cut and at the end must match the silent run.
    #[test]
    fn prop_restore_cut_with_reconfigured_telemetry_stays_identical(
        seed in 0u64..10_000,
        cut in 1usize..8,
    ) {
        let rounds = 8;
        let scenario = dynamic_scenario(seed, rounds);

        let mut silent = service(seed, TelemetryHandle::disabled());
        run_scenario(&mut silent, &scenario, rounds).unwrap();
        let silent_json = silent.snapshot_json().unwrap();

        let mut first_half = service(seed, TelemetryHandle::enabled());
        run_scenario(&mut first_half, &scenario, cut).unwrap();
        let cut_json = first_half.snapshot_json().unwrap();
        drop(first_half);

        // Restore onto a sink with a non-default configuration: SLO policy and journal
        // bounds are runtime-only, so this must not show up anywhere in the replay.
        let reconfigured = TelemetryHandle::with_clock(
            std::sync::Arc::new(telemetry::MonotonicClock::new()),
            TelemetryConfig {
                journal_capacity: 8,
                unsafe_rate_ceiling: 0.5,
            },
        );
        let snapshot = serde_json::from_str(&cut_json).map_err(|e| e.to_string()).unwrap();
        let mut resumed = FleetService::restore_with_telemetry(snapshot, reconfigured).unwrap();
        run_scenario(&mut resumed, &scenario, rounds - cut).unwrap();

        prop_assert_eq!(
            silent_json,
            resumed.snapshot_json().unwrap(),
            "telemetry-reconfigured restore diverged from the silent run"
        );
        assert_bitwise_equal(
            &silent.summaries(),
            &resumed.summaries(),
            &format!("cut at round {cut}"),
        );
        prop_assert_eq!(resumed.metrics_snapshot().counter(CounterId::RestoresCompleted), 1);
        // The reconfigured ceiling reaches the SLO report, proving the policy is live
        // even though it is invisible to the replay.
        for slo in resumed.slo_reports() {
            prop_assert_eq!(slo.unsafe_ceiling, 0.5);
        }
    }

    /// Toggling telemetry mid-run (off → on → off) leaves the fleet bit-identical to a
    /// fleet that never had a sink installed.
    #[test]
    fn prop_mid_run_toggle_is_invisible(seed in 0u64..10_000) {
        let rounds = 6;
        let scenario = dynamic_scenario(seed, rounds);

        let mut silent = service(seed, TelemetryHandle::disabled());
        run_scenario(&mut silent, &scenario, rounds).unwrap();

        let mut toggled = service(seed, TelemetryHandle::disabled());
        run_scenario(&mut toggled, &scenario, 2).unwrap();
        toggled.set_telemetry(TelemetryHandle::enabled());
        run_scenario(&mut toggled, &scenario, 2).unwrap();
        toggled.set_telemetry(TelemetryHandle::disabled());
        run_scenario(&mut toggled, &scenario, rounds - 4).unwrap();

        prop_assert_eq!(
            silent.snapshot_json().unwrap(),
            toggled.snapshot_json().unwrap(),
            "mid-run telemetry toggle changed snapshot bytes"
        );
        assert_bitwise_equal(&silent.summaries(), &toggled.summaries(), "toggle");
    }
}

/// What one fuzzed-churn run left behind in its journals and counters.
struct ChurnOutcome {
    svc: FleetService,
    /// Iterations the fleet executed, summed over every round (including rounds run by
    /// tenants that were later removed).
    iterations_run: u64,
}

impl ChurnOutcome {
    /// Events retained across the fleet core and every live tenant's child ring.
    fn events_retained(&self) -> u64 {
        self.svc.telemetry_events().len() as u64
    }

    /// Events dropped to ring overflow, summed over the fleet core and every live
    /// tenant (`remove_tenant` drains a departing tenant's drop count into the core,
    /// so removed tenants are already included in the core's figure).
    fn events_dropped(&self) -> u64 {
        let mut dropped = self.svc.telemetry().events_dropped();
        for summary in self.svc.summaries() {
            if let Some(session) = self.svc.session(&summary.name) {
                dropped += session.telemetry().events_dropped();
            }
        }
        dropped
    }
}

/// Drives a randomly generated admit/remove sequence (derived from `seed`) through a
/// fleet whose journals have the given per-ring capacity. Removals go through the
/// `remove_tenant` drain path, so departing tenants' events and drop counts land in the
/// fleet core before their sessions are dropped.
fn run_fuzzed_churn(seed: u64, journal_capacity: usize) -> ChurnOutcome {
    let telemetry = TelemetryHandle::with_clock(
        std::sync::Arc::new(MonotonicClock::new()),
        TelemetryConfig {
            journal_capacity,
            unsafe_rate_ceiling: 0.75,
        },
    );
    let mut svc = FleetService::new(FleetOptions {
        workers: 2,
        tuner: small_tuner_options(),
        ..Default::default()
    });
    svc.set_telemetry(telemetry);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_id = 0usize;
    let mut admit = |svc: &mut FleetService, rng: &mut StdRng| {
        let family = WorkloadFamily::ALL[rng.gen_range(0..WorkloadFamily::ALL.len())];
        let mut spec = TenantSpec::named(format!("c{next_id}"), family, seed + next_id as u64);
        spec.deterministic = true;
        next_id += 1;
        svc.admit(spec).unwrap();
    };
    admit(&mut svc, &mut rng);
    admit(&mut svc, &mut rng);

    let mut iterations_run = 0u64;
    for _ in 0..10 {
        if rng.gen_bool(0.4) {
            admit(&mut svc, &mut rng);
        }
        if svc.n_tenants() > 1 && rng.gen_bool(0.35) {
            let names: Vec<String> = svc.summaries().iter().map(|s| s.name.clone()).collect();
            let victim = &names[rng.gen_range(0..names.len())];
            svc.remove_tenant(victim).unwrap();
        }
        iterations_run += svc.run_round() as u64;
    }
    ChurnOutcome {
        svc,
        iterations_run,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Journal conservation under fuzzed churn: running the same random admit/remove
    /// sequence with a tiny per-ring capacity and with a capacity large enough to never
    /// overflow must account for exactly the same event total — `retained + dropped` is
    /// invariant, the large-capacity run drops nothing, and the fleet itself is
    /// untouched by the journal bound (byte-identical snapshots).
    #[test]
    fn prop_journal_overflow_accounting_is_exact_under_churn(seed in 0u64..10_000) {
        let tiny = run_fuzzed_churn(seed, 8);
        let huge = run_fuzzed_churn(seed, 4096);

        prop_assert_eq!(huge.events_dropped(), 0, "the large ring must never overflow");
        prop_assert!(tiny.events_dropped() > 0, "capacity 8 must overflow under churn");
        prop_assert_eq!(
            tiny.events_retained() + tiny.events_dropped(),
            huge.events_retained(),
            "retained + dropped must equal the true event total"
        );
        prop_assert_eq!(
            tiny.svc.snapshot_json().unwrap(),
            huge.svc.snapshot_json().unwrap(),
            "journal capacity leaked into fleet state"
        );
    }

    /// Drain exactness under fuzzed churn: `remove_tenant` moves a departing tenant's
    /// counters into the fleet core, so the merged `Iterations` counter equals the
    /// number of iterations the fleet ever ran — no matter how many of those iterations
    /// belonged to tenants that no longer exist.
    #[test]
    fn prop_drain_totals_are_exact_under_churn(seed in 0u64..10_000) {
        let outcome = run_fuzzed_churn(seed, 64);
        let metrics = outcome.svc.metrics_snapshot();
        prop_assert_eq!(
            metrics.counter(CounterId::Iterations),
            outcome.iterations_run,
            "drained Iterations counter diverged from iterations actually run"
        );
        prop_assert_eq!(
            metrics.counter(CounterId::TenantsAdmitted)
                - metrics.counter(CounterId::TenantsRemoved),
            outcome.svc.n_tenants() as u64,
            "admission/removal counters must reconcile with the live tenant count"
        );
    }
}
