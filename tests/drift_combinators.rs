//! Property tests of `workloads::drift` combinator composition: randomly composed drift
//! stacks must be pure (same iteration → same output, across independently built
//! generators), serde-round-trip stable (the snapshot/restore contract rides on the
//! spec's drift list), and anchor shifting must commute — both algebraically on
//! [`WorkloadDrift`] values and observably on the composed generators' load curves.

use fleet::tenant::{TenantSpec, WorkloadDrift, WorkloadFamily};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workloads::drift::{DiurnalLoad, FlashCrowd, RateRamp, SkewGrowth};

/// Samples one drift of any of the six kinds from a seeded stream.
fn sample_drift(rng: &mut StdRng, allow_periodic: bool) -> WorkloadDrift {
    let kinds = if allow_periodic { 6 } else { 5 };
    match rng.gen_range(0..kinds) {
        0 => WorkloadDrift::RateRamp {
            start: rng.gen_range(0..8usize),
            over: rng.gen_range(0..6usize),
            from_scale: rng.gen_range(0.5..1.5),
            to_scale: rng.gen_range(0.5..2.5),
        },
        1 => WorkloadDrift::FamilySwitch {
            at: rng.gen_range(0..8usize),
            to: WorkloadFamily::ALL[rng.gen_range(0..WorkloadFamily::ALL.len())],
        },
        2 => WorkloadDrift::Diurnal {
            period: rng.gen_range(2..10usize),
            amplitude: rng.gen_range(0.05..0.9),
            anchor: rng.gen_range(0..6usize),
        },
        3 => WorkloadDrift::FlashCrowd {
            at: rng.gen_range(0..8usize),
            peak: rng.gen_range(1.2..4.0),
            half_life: rng.gen_range(1..5usize),
        },
        4 => WorkloadDrift::SkewGrowth {
            start: rng.gen_range(0..6usize),
            over: rng.gen_range(0..8usize),
            to_skew: rng.gen_range(0.0..1.0),
            data_factor: rng.gen_range(0.5..3.0),
        },
        _ => WorkloadDrift::PeriodicFamilies {
            period: rng.gen_range(2..6usize),
            other: WorkloadFamily::ALL[rng.gen_range(0..WorkloadFamily::ALL.len())],
        },
    }
}

/// A tenant spec carrying a randomly composed drift stack.
fn spec_with_stack(seed: u64, depth: usize, allow_periodic: bool) -> TenantSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let family = WorkloadFamily::ALL[rng.gen_range(0..WorkloadFamily::ALL.len())];
    let mut spec = TenantSpec::named("p", family, seed);
    for _ in 0..depth {
        let drift = sample_drift(&mut rng, allow_periodic);
        spec.drift.push(drift);
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Purity: two independently built generators from the same composed spec agree on
    /// every observable at every iteration — drift combinators are pure functions of
    /// the iteration index with no hidden mutable state.
    #[test]
    fn prop_composed_stacks_are_pure(seed in 0u64..10_000, depth in 0usize..5) {
        let spec = spec_with_stack(seed, depth, true);
        let a = spec.build_generator();
        let b = spec.build_generator();
        prop_assert_eq!(a.name(), b.name());
        prop_assert_eq!(
            a.initial_data_size_gib().to_bits(),
            b.initial_data_size_gib().to_bits()
        );
        // Deliberately out of order: a pure generator has no path dependence either.
        for iteration in [5usize, 0, 11, 3, 11, 0] {
            prop_assert_eq!(
                a.spec_at(iteration),
                b.spec_at(iteration),
                "spec_at({}) diverged",
                iteration
            );
            prop_assert_eq!(
                a.sample_queries(iteration, 4),
                b.sample_queries(iteration, 4),
                "sample_queries({}) diverged",
                iteration
            );
        }
    }

    /// Serde round trip: a spec's drift stack survives JSON — and the generator rebuilt
    /// from the deserialized spec reproduces the original spec stream exactly (this is
    /// what lets a snapshot-restored session continue bit-identically).
    #[test]
    fn prop_drift_stacks_round_trip_through_serde(seed in 0u64..10_000, depth in 1usize..5) {
        let spec = spec_with_stack(seed, depth, true);
        let json = serde_json::to_string(&spec).unwrap();
        let restored: TenantSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&restored, &spec);
        let original = spec.build_generator();
        let rebuilt = restored.build_generator();
        for iteration in 0..10 {
            prop_assert_eq!(original.spec_at(iteration), rebuilt.spec_at(iteration));
        }
    }

    /// Anchor shifting is additive: shifting twice equals shifting once by the sum, for
    /// every drift kind.
    #[test]
    fn prop_anchor_shift_is_additive(seed in 0u64..10_000, a in 0usize..50, b in 0usize..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        for allow_periodic in [true, false] {
            let drift = sample_drift(&mut rng, allow_periodic);
            prop_assert_eq!(
                drift.clone().anchored_at(a).anchored_at(b),
                drift.anchored_at(a + b)
            );
        }
    }

    /// Anchor shifting commutes with composition on the effective-family axis: shifting
    /// every drift in a (periodic-free) stack by `offset` translates `family_at` by
    /// exactly `offset`. `PeriodicFamilies` is excluded — it is anchored to iteration 0
    /// by design and unchanged by `anchored_at`.
    #[test]
    fn prop_shifted_stack_translates_family_at(
        seed in 0u64..10_000,
        depth in 1usize..5,
        offset in 0usize..30,
    ) {
        let spec = spec_with_stack(seed, depth, false);
        let mut shifted = spec.clone();
        shifted.drift = shifted
            .drift
            .into_iter()
            .map(|d| d.anchored_at(offset))
            .collect();
        for iteration in 0..20 {
            prop_assert_eq!(
                shifted.family_at(iteration + offset),
                spec.family_at(iteration),
                "family_at({} + {}) != family_at({})",
                iteration,
                offset,
                iteration
            );
        }
    }

    /// Anchor shifting commutes with composition on the load-curve axis: each anchored
    /// scale combinator evaluated at `iteration + offset` with its anchor shifted by
    /// `offset` is bit-identical to the unshifted combinator at `iteration` (the curves
    /// are functions of the anchor-relative position only).
    #[test]
    fn prop_shifted_scale_curves_are_translations(seed in 0u64..10_000, offset in 0usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = || WorkloadFamily::Ycsb.build(seed);
        let period = rng.gen_range(2..10usize);
        let amplitude = rng.gen_range(0.05..0.9);
        let anchor = rng.gen_range(0..6usize);
        let at = rng.gen_range(0..8usize);
        let peak = rng.gen_range(1.2..4.0);
        let half_life = rng.gen_range(1..5usize);
        let start = rng.gen_range(0..6usize);
        let over = rng.gen_range(0..8usize);

        let diurnal = DiurnalLoad::new(base(), period, amplitude, anchor);
        let diurnal_shifted = DiurnalLoad::new(base(), period, amplitude, anchor + offset);
        let flash = FlashCrowd::new(base(), at, peak, half_life);
        let flash_shifted = FlashCrowd::new(base(), at + offset, peak, half_life);
        let skew = SkewGrowth::new(base(), start, over, 0.8, 2.0);
        let skew_shifted = SkewGrowth::new(base(), start + offset, over, 0.8, 2.0);
        let ramp = RateRamp::new(base(), start, over, 1.0, 2.0);
        let ramp_shifted = RateRamp::new(base(), start + offset, over, 1.0, 2.0);

        for iteration in 0..25 {
            prop_assert_eq!(
                diurnal_shifted.scale_at(iteration + offset).to_bits(),
                diurnal.scale_at(iteration).to_bits()
            );
            prop_assert_eq!(
                flash_shifted.scale_at(iteration + offset).to_bits(),
                flash.scale_at(iteration).to_bits()
            );
            prop_assert_eq!(
                skew_shifted.progress_at(iteration + offset).to_bits(),
                skew.progress_at(iteration).to_bits()
            );
            prop_assert_eq!(
                ramp_shifted.scale_at(iteration + offset).to_bits(),
                ramp.scale_at(iteration).to_bits()
            );
        }
    }
}
