//! Property-style integration tests for the safety machinery across crates.

use onlinetune::whitebox::{RuleContext, RuleEngine};
use onlinetune::{AblationFlags, OnlineTune, OnlineTuneOptions};
use proptest::prelude::*;
use simdb::{Configuration, HardwareSpec, KnobCatalogue};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever context and threshold the environment produces, OnlineTune's recommendation
    /// must be a legal configuration (every knob within its domain) and must satisfy the
    /// white-box rules unless a rule override is explicitly reported.
    #[test]
    fn recommendations_are_always_legal_and_rule_compliant(
        ctx_vals in proptest::collection::vec(0.0f64..1.0, 12),
        threshold in -1000.0f64..30000.0,
        seed in 0u64..50,
    ) {
        let catalogue = KnobCatalogue::mysql57();
        let initial = Configuration::dba_default(&catalogue);
        let mut tuner = OnlineTune::new(
            catalogue.clone(),
            HardwareSpec::default(),
            12,
            &initial,
            OnlineTuneOptions { ablation: AblationFlags::default(), ..Default::default() },
            seed,
        );
        let suggestion = tuner.suggest(&ctx_vals, threshold, 32);
        for (v, k) in suggestion.config.values().iter().zip(catalogue.knobs()) {
            prop_assert!(*v >= k.min() && *v <= k.max(), "{} = {v}", k.name);
        }
        let engine = RuleEngine::with_default_rules();
        let hardware = HardwareSpec::default();
        let rule_ctx = RuleContext {
            catalogue: &catalogue,
            hardware: &hardware,
            clients: 32,
            metrics: None,
        };
        prop_assert!(
            engine.passes(&suggestion.config, &rule_ctx)
                || suggestion.diagnostics.overridden_rule.is_some()
        );
    }

    /// The white-box engine must always accept the DBA default, whatever hardware size the
    /// cloud instance has (rules are expressed relative to the hardware).
    #[test]
    fn dba_default_passes_rules_on_any_reasonable_hardware(
        vcpus in 2usize..64,
        // The DBA default is sized for a 16 GiB instance; much larger instances would have a
        // different DBA default, so the property is stated for the 8–60 GiB range.
        ram in 8.0f64..60.0,
    ) {
        let catalogue = KnobCatalogue::mysql57();
        let config = Configuration::dba_default(&catalogue);
        let hardware = HardwareSpec { vcpus, ram_gib: ram, ..Default::default() };
        let engine = RuleEngine::with_default_rules();
        let rule_ctx = RuleContext {
            catalogue: &catalogue,
            hardware: &hardware,
            clients: 32,
            metrics: None,
        };
        // On very small instances the 13 GiB DBA buffer pool genuinely violates the memory
        // budget — the rule must flag it there and accept it on instances at least as large
        // as the paper's 16 GiB testbed. (The 14–16 GiB band is borderline and left
        // unasserted: whether it passes depends on the session-memory estimate.)
        let passes = engine.passes(&config, &rule_ctx);
        if ram >= 16.0 {
            prop_assert!(passes);
        } else if ram <= 14.0 {
            prop_assert!(!passes);
        }
    }
}
