//! Integration tests of the scenario fuzzer: the generator's case stream is valid and
//! deterministic, fuzzed timelines pass the standard property registry end-to-end, and
//! the shrinker demonstrably minimizes a seeded fault to a handful of events.

use fleet::fuzz::{
    run_fuzz_case, shrink_case, FuzzCase, PropertyRegistry, ScenarioDistribution, ScenarioGenerator,
};
use fleet::scenario::ScenarioEvent;

/// A distribution small enough for end-to-end runs inside a test.
fn small_distribution() -> ScenarioDistribution {
    ScenarioDistribution {
        max_initial_tenants: 2,
        max_rounds: 5,
        max_events: 4,
        ..Default::default()
    }
}

#[test]
fn generator_stream_is_valid_and_reproducible_across_many_cases() {
    let dist = ScenarioDistribution::default();
    let mut a = ScenarioGenerator::new(dist.clone(), 77);
    let mut b = ScenarioGenerator::new(dist.clone(), 77);
    for i in 0..100 {
        let ca = a.next_case();
        let cb = b.next_case();
        assert_eq!(ca, cb, "case {i}: same seed must replay the same stream");
        assert_eq!(
            ca.scenario.validate(&ca.initial_names()),
            Ok(()),
            "case {i} must be valid by construction"
        );
        assert!(ca.rounds >= dist.min_rounds.max(2) && ca.rounds <= dist.max_rounds);
        assert!(ca.cut_round >= 1 && ca.cut_round < ca.rounds);
        assert!(ca.scenario.steps.len() <= dist.max_events * dist.max_initial_tenants.max(1));
        // Serde round trip: what the corpus stores replays what the generator drew.
        let json = ca.to_json().unwrap();
        assert_eq!(FuzzCase::from_json(&json).unwrap(), ca);
    }
}

#[test]
fn generated_timelines_pass_every_standard_property_end_to_end() {
    let dist = small_distribution();
    let registry = PropertyRegistry::standard();
    let mut generator = ScenarioGenerator::new(dist.clone(), 4242);
    for _ in 0..3 {
        let case = generator.next_case();
        let artifacts = run_fuzz_case(&case, &dist).unwrap();
        let violations = registry.check_all(&artifacts);
        assert!(
            violations.is_empty(),
            "case `{}` violated: {violations:?}",
            case.name
        );
        assert!(artifacts.replay_identical, "{}", artifacts.replay_detail);
        assert_eq!(artifacts.rounds.len(), case.rounds);
    }
}

#[test]
fn an_intentionally_broken_property_yields_a_minimized_scenario() {
    // Seeded fault: pretend "no timeline may carry a migrate event" is a global
    // property. The shrinker must reduce an organically drawn failing case to a
    // minimal reproducer (≤ 10 events per the acceptance bar; in practice 1).
    let dist = ScenarioDistribution::default();
    let mut generator = ScenarioGenerator::new(dist, 2026);
    let case = std::iter::from_fn(|| Some(generator.next_case()))
        .take(500)
        .find(|c| {
            c.scenario
                .steps
                .iter()
                .any(|s| matches!(s.event, ScenarioEvent::Migrate { .. }))
                && c.scenario.steps.len() > 2
        })
        .expect("the default distribution produces migrate events");
    let fails = |c: &FuzzCase| {
        c.scenario
            .steps
            .iter()
            .any(|s| matches!(s.event, ScenarioEvent::Migrate { .. }))
    };
    let minimized = shrink_case(&case, fails, 400);
    assert!(fails(&minimized), "shrinking must preserve the failure");
    assert!(
        minimized.scenario.steps.len() <= 10,
        "minimized scenario still has {} events",
        minimized.scenario.steps.len()
    );
    assert_eq!(
        minimized.initial_tenants.len(),
        1,
        "the fleet should shrink to a single tenant"
    );
    assert!(minimized.rounds <= case.rounds);
    assert_eq!(
        minimized.scenario.validate(&minimized.initial_names()),
        Ok(())
    );
}

#[test]
fn shrinking_against_the_real_property_registry_keeps_passing_cases_intact() {
    // When a case does NOT fail, the shrinker must return it unchanged: every candidate
    // evaluation comes back green, so no move is ever accepted.
    let dist = small_distribution();
    let registry = PropertyRegistry::standard();
    let case = ScenarioGenerator::new(dist.clone(), 11).next_case();
    let fails = |c: &FuzzCase| {
        run_fuzz_case(c, &dist)
            .map(|a| !registry.check_all(&a).is_empty())
            .unwrap_or(false)
    };
    assert!(!fails(&case), "the sampled case should pass all properties");
    let shrunk = shrink_case(&case, fails, 8);
    assert_eq!(shrunk, case, "a passing case must not be shrunk");
}
