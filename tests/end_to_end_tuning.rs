//! End-to-end integration tests: the full OnlineTune loop against the simulated database
//! across crates (simdb + workloads + featurize + onlinetune).

use featurize::ContextFeaturizer;
use onlinetune::{OnlineTune, OnlineTuneOptions};
use simdb::{Configuration, HardwareSpec, KnobCatalogue, OptimizerStats, SimDatabase};
use workloads::job::JobWorkload;
use workloads::tpcc::TpccWorkload;
use workloads::twitter::TwitterWorkload;
use workloads::WorkloadGenerator;

/// Runs a full OnlineTune session and returns (tuned cumulative txn, default cumulative txn,
/// unsafe intervals, instance failures).
fn tune_session(
    generator: &dyn WorkloadGenerator,
    iterations: usize,
    seed: u64,
) -> (f64, f64, usize, usize) {
    let catalogue = KnobCatalogue::mysql57();
    let featurizer = ContextFeaturizer::with_defaults();
    let initial = Configuration::dba_default(&catalogue);
    let mut db = SimDatabase::new(seed);
    db.set_data_size(generator.initial_data_size_gib());
    let mut tuner = OnlineTune::new(
        catalogue.clone(),
        HardwareSpec::default(),
        featurizer.dim(),
        &initial,
        OnlineTuneOptions::default(),
        seed,
    );

    let mut tuned = 0.0;
    let mut default = 0.0;
    let mut unsafe_count = 0;
    for it in 0..iterations {
        let spec = generator.spec_at(it);
        let queries = generator.sample_queries(it, 25);
        let stats = OptimizerStats::estimate(&spec);
        let context = featurizer.featurize(&queries, spec.arrival_rate_qps, &stats);
        let threshold = db.peek(&initial, &spec).throughput_tps;
        let suggestion = tuner.suggest(&context, threshold, spec.clients);
        db.apply_config(&suggestion.config);
        let eval = db.run_interval(&spec, 180.0);
        let tps = eval.outcome.throughput_tps;
        if eval.outcome.failed || tps < threshold * 0.95 {
            unsafe_count += 1;
        }
        tuned += tps * 180.0;
        default += threshold * 180.0;
        tuner
            .observe(
                &context,
                &suggestion.config,
                tps,
                Some(&eval.metrics),
                tps >= threshold * 0.95,
            )
            .expect("simulated measurements are finite");
    }
    (tuned, default, unsafe_count, db.failures())
}

#[test]
fn onlinetune_never_hangs_and_stays_close_to_or_above_the_default_on_tpcc() {
    // 60 intervals is early in the tuning process (the paper runs 400); at this point the
    // requirement is that OnlineTune stays *close* to the default while exploring safely,
    // not that it has already overtaken it.
    let generator = TpccWorkload::new_dynamic(1);
    let (tuned, default, unsafe_count, failures) = tune_session(&generator, 60, 101);
    assert_eq!(failures, 0, "OnlineTune must never hang the instance");
    assert!(
        tuned >= default * 0.97,
        "cumulative transactions {tuned:.3e} fell more than 3% below the default {default:.3e}"
    );
    assert!(
        unsafe_count <= 12,
        "too many unsafe intervals: {unsafe_count}"
    );
}

#[test]
fn onlinetune_handles_a_read_heavy_skewed_workload() {
    let generator = TwitterWorkload::new_dynamic(2);
    let (tuned, default, unsafe_count, failures) = tune_session(&generator, 50, 202);
    assert_eq!(failures, 0);
    assert!(tuned >= default * 0.97);
    assert!(unsafe_count <= 10, "unsafe = {unsafe_count}");
}

#[test]
fn observations_accumulate_and_clusters_form_across_distinct_phases() {
    let catalogue = KnobCatalogue::mysql57();
    let featurizer = ContextFeaturizer::with_defaults();
    let initial = Configuration::dba_default(&catalogue);
    let mut tuner = OnlineTune::new(
        catalogue.clone(),
        HardwareSpec::default(),
        featurizer.dim(),
        &initial,
        OnlineTuneOptions::default(),
        7,
    );
    let tpcc = TpccWorkload::new_dynamic(3);
    let job = JobWorkload::new_dynamic(3);
    let mut db = SimDatabase::new(7);
    db.set_data_size(20.0);
    for it in 0..70 {
        // Alternate between a write-heavy OLTP phase and a pure-OLAP phase: their context
        // features are far apart, so DBSCAN must separate them.
        let (spec, queries) = if (it / 10) % 2 == 0 {
            (tpcc.spec_at(it), tpcc.sample_queries(it, 25))
        } else {
            (job.spec_at(it), job.sample_queries(it, 25))
        };
        let stats = OptimizerStats::estimate(&spec);
        let context = featurizer.featurize(&queries, spec.arrival_rate_qps, &stats);
        let threshold = db.peek(&initial, &spec).throughput_tps;
        let suggestion = tuner.suggest(&context, threshold, spec.clients);
        db.apply_config(&suggestion.config);
        let eval = db.run_interval(&spec, 180.0);
        tuner
            .observe(
                &context,
                &suggestion.config,
                eval.outcome.throughput_tps,
                Some(&eval.metrics),
                eval.outcome.throughput_tps >= threshold * 0.95,
            )
            .expect("simulated measurements are finite");
    }
    assert_eq!(tuner.observation_count(), 70);
    assert!(
        tuner.model_count() >= 2,
        "two clearly different workload phases should produce at least two context clusters, got {}",
        tuner.model_count()
    );
}
